module Dsl = Promise_ir.Dsl
module At = Promise_ir.Abstract_task
module Graph = Promise_ir.Graph
module Program = Promise_isa.Program
module Model = Promise_energy.Model
module Conv = Promise_energy.Conv
module Machine = Promise_arch.Machine
module Bank = Promise_arch.Bank
module Runtime = Promise_compiler.Runtime
module Pipeline = Promise_compiler.Pipeline
module Lower = Promise_compiler.Lower
module Precision = Promise_compiler.Precision
module Swing_opt = Promise_compiler.Swing_opt
module Rng = Promise_analog.Rng
module Ml = Promise_ml
module Fx = Promise_ml.Fixed_point

type eval = {
  promise_accuracy : float;
  reference_accuracy : float;
  mismatch : float;
}

type t = {
  name : string;
  short : string;
  abstract_tasks : int;
  graph : Graph.t;
  per_decision_program : Program.t;
  banks : int;
  conv_workload : Conv.workload;
  conv_opt_bits : int;
  reference_accuracy : float;
  is_classifier : bool;
  evaluate :
    ?seed:int ->
    ?profile:Bank.profile ->
    ?prepare:(Machine.t -> unit) ->
    ?recovery:Runtime.recovery ->
    ?banks:int ->
    ?pool:Promise_core.Pool.t ->
    ?kernel_mode:Machine.kernel_mode ->
    ?batch:int ->
    swings:int list ->
    unit ->
    eval;
  stats : Precision.stats option;
}

let err_string = Promise_core.Error.to_string

let compile_exn kernel =
  match Pipeline.compile kernel with
  | Ok g -> g
  | Error e ->
      invalid_arg
        (Printf.sprintf "benchmark kernel failed to compile: %s" (err_string e))

let codegen_exn g =
  match Pipeline.codegen g with
  | Ok p -> p
  | Error e -> invalid_arg ("benchmark codegen failed: " ^ err_string e)

let apply_swings g swings =
  let order = Graph.topological_order g in
  if List.length swings <> List.length order then
    invalid_arg "apply_swings: one swing per task required";
  let table = Hashtbl.create 8 in
  List.iter2 (fun id s -> Hashtbl.replace table id s) order swings;
  Graph.map_tasks g (fun id task -> At.with_swing task (Hashtbl.find table id))

let silicon_machine ?(profile = Bank.Silicon) ~banks ~seed () =
  Machine.create { Machine.banks; profile; noise_seed = Some seed }

(* [batch] decisions of the same query on one machine. Bit-identical to
   [batch] sequential [Runtime.run] calls (the runtime's contract), so
   [batch = 1] is exactly the historical single-decision evaluation. *)
let run_batch_exn ?recovery ?pool ?kernel_mode machine g b ~batch =
  match Runtime.run_batch ~machine ?recovery ?pool ?kernel_mode g b ~batch with
  | Ok rs -> rs
  | Error e -> invalid_arg ("benchmark batch run failed: " ^ err_string e)

(* Generic classification evaluation: one machine for the whole test
   set, one graph run per query. [prepare] runs on the freshly-created
   machine (fault injection hook); [recovery] is forwarded to the
   runtime; [banks] overrides the default machine size (lane sparing
   may need spare banks). *)
let make_classifier_eval ~graph ~bind_static ~bind_query ~queries ~labels
    ~decide ~reference_accuracy =
 fun ?(seed = 42) ?(profile = Bank.Silicon) ?prepare ?recovery ?banks ?pool
     ?kernel_mode ?(batch = 1) ~swings () ->
  let g = apply_swings graph swings in
  let banks =
    match banks with Some b -> b | None -> Runtime.required_banks g
  in
  let machine = silicon_machine ~profile ~banks ~seed () in
  (match prepare with Some f -> f machine | None -> ());
  (* [batch] noise realizations per query, accuracy over Q × batch
     decisions; batch 1 is bit-identical to the historical path. *)
  let correct = ref 0 in
  Array.iteri
    (fun i q ->
      let b = Runtime.bindings () in
      bind_static b;
      bind_query b q;
      let rs = run_batch_exn ?recovery ?pool ?kernel_mode machine g b ~batch in
      Array.iter (fun r -> if decide r = labels.(i) then incr correct) rs)
    queries;
  let promise_accuracy =
    float_of_int !correct /. float_of_int (Array.length queries * batch)
  in
  {
    promise_accuracy;
    reference_accuracy;
    mismatch = Float.max 0.0 (reference_accuracy -. promise_accuracy);
  }

let final_values r =
  match Runtime.final_output r with
  | Ok o -> o.Runtime.values
  | Error e -> invalid_arg (err_string e)

let final_decision r =
  match Runtime.final_output r with
  | Ok { Runtime.decision = Some (i, _); _ } -> i
  | Ok _ -> invalid_arg "benchmark: no fused decision in output"
  | Error e -> invalid_arg (err_string e)

(* The digital CONV-OPT precision floor is 4 bits: the adaptive-precision
   range of the [7] silicon is 4-8 bits, and our synthetic data is more
   quantization-tolerant than the paper's (see EXPERIMENTS.md). *)
let conv_opt_bits_for ~ref_acc ~acc_at_bits =
  let rec search b = if b >= 8 then 8
    else if ref_acc -. acc_at_bits b <= 0.01 then b
    else search (b + 1)
  in
  max 4 (search 2)

(* Quantize a float array to a b-bit grid, preserving scale. *)
let requantize ~bits v =
  let k = Float.max 1e-12 (Ml.Linalg.max_abs v) in
  Array.map (fun x -> Fx.quantize_to_bits (x /. k) ~bits *. k) v

let requantize_mat ~bits m =
  let k = Float.max 1e-12 (Ml.Linalg.mat_max_abs m) in
  Array.map (Array.map (fun x -> Fx.quantize_to_bits (x /. k) ~bits *. k)) m

(* Builder memoization must be domain-safe now that suites fan out
   across a pool: the mutex is held while [f] runs, so a benchmark is
   trained exactly once no matter how many domains ask for it. *)
let memo f =
  let lock = Mutex.create () in
  let cache = ref None in
  fun () ->
    Mutex.protect lock (fun () ->
        match !cache with
        | Some v -> v
        | None ->
            let v = f () in
            cache := Some v;
            v)

(* memoization keyed by a size configuration *)
let memo_by f =
  let lock = Mutex.create () in
  let cache = Hashtbl.create 8 in
  fun key ->
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt cache key with
        | Some v -> v
        | None ->
            let v = f key in
            Hashtbl.add cache key v;
            v)

(* ------------------------------------------------------------------ *)
(* Matched filter: gunshot detection, N = 512                          *)
(* ------------------------------------------------------------------ *)

let matched_filter_sized =
  memo_by (fun n ->
      let rng = Rng.create (101 + n) in
      let template = Ml.Dataset.Gunshot.template rng ~len:n in
      let calib =
        Ml.Dataset.Gunshot.windows rng ~template ~n:200 ~snr:1.0
      in
      let threshold = Ml.Matched_filter.calibrate_threshold ~template calib in
      let filt = Ml.Matched_filter.make ~template ~threshold in
      let test = Ml.Dataset.Gunshot.windows rng ~template ~n:100 ~snr:1.0 in
      let reference_accuracy = Ml.Matched_filter.accuracy filt test in
      let kernel =
        Dsl.kernel ~name:"matched_filter"
          ~decls:
            [
              Dsl.matrix "W" ~rows:1 ~cols:n;
              Dsl.vector "x" ~len:n;
              Dsl.out_vector "out" ~len:1;
            ]
          [
            Dsl.for_store ~iterations:1 ~out:"out"
              (Dsl.sthreshold threshold (Dsl.dot "W" "x"));
          ]
      in
      let graph = compile_exn kernel in
      let program = codegen_exn graph in
      let queries = Array.map (fun s -> s.Ml.Dataset.features) test in
      let labels = Array.map (fun s -> s.Ml.Dataset.label) test in
      let bind_static b = Runtime.bind_matrix b "W" [| template |] in
      let bind_query b q = Runtime.bind_vector b "x" q in
      let decide r = if (final_values r).(0) > 0.5 then 1 else 0 in
      let evaluate =
        make_classifier_eval ~graph ~bind_static ~bind_query ~queries ~labels
          ~decide ~reference_accuracy
      in
      let acc_at_bits bits =
        let tq = requantize ~bits template in
        let f = Ml.Matched_filter.make ~template:tq ~threshold in
        let testq =
          Array.map
            (fun s ->
              { s with Ml.Dataset.features = requantize ~bits s.Ml.Dataset.features })
            test
        in
        Ml.Matched_filter.accuracy f testq
      in
      {
        name = Printf.sprintf "Matched filter (gunshot detection, N=%d)" n;
        short = (if n = 512 then "Match.Filt." else Printf.sprintf "MF-%d" n);
        abstract_tasks = Graph.n_tasks graph;
        graph;
        per_decision_program = program;
        banks = Program.max_banks program;
        conv_workload =
          {
            Conv.name = "Match.Filt.";
            macs = n;
            fetch_words = n;
            banks = Program.max_banks program;
          };
        conv_opt_bits =
          conv_opt_bits_for ~ref_acc:reference_accuracy ~acc_at_bits;
        reference_accuracy;
        is_classifier = true;
        evaluate;
        stats = None;
      })

let matched_filter () = matched_filter_sized 512

(* ------------------------------------------------------------------ *)
(* Template matching L1 / L2: face recognition, 64 candidates          *)
(* ------------------------------------------------------------------ *)

let template_bench (metric, (width, height)) =
  let n_candidates = 64 and n_queries = 80 in
  let rng = Rng.create (202 + (width * height)) in
  let candidates =
    Ml.Dataset.Faces.identities rng ~width ~height ~n:n_candidates
  in
  let queries =
    Array.init n_queries (fun i ->
        let identity = i mod n_candidates in
        ( Ml.Dataset.Faces.query rng ~width ~height candidates ~identity,
          identity ))
  in
  let ml_metric = match metric with `L1 -> Ml.Template.L1 | `L2 -> Ml.Template.L2 in
  let reference_accuracy =
    Ml.Template.recognition_accuracy ~metric:ml_metric ~candidates queries
  in
  let dims = width * height in
  let body =
    match metric with
    | `L1 -> Dsl.l1_distance "W" "x"
    | `L2 -> Dsl.l2_distance "W" "x"
  in
  let kernel =
    Dsl.kernel
      ~name:(match metric with `L1 -> "template_l1" | `L2 -> "template_l2")
      ~decls:
        [
          Dsl.matrix "W" ~rows:n_candidates ~cols:dims;
          Dsl.vector "x" ~len:dims;
          Dsl.out_vector "out" ~len:n_candidates;
        ]
      [ Dsl.for_store ~iterations:n_candidates ~out:"out" body; Dsl.argmin "out" ]
  in
  let graph = compile_exn kernel in
  let program = codegen_exn graph in
  let query_features = Array.map fst queries in
  let labels = Array.map snd queries in
  let evaluate =
    make_classifier_eval ~graph
      ~bind_static:(fun b -> Runtime.bind_matrix b "W" candidates)
      ~bind_query:(fun b q -> Runtime.bind_vector b "x" q)
      ~queries:query_features ~labels ~decide:final_decision
      ~reference_accuracy
  in
  let acc_at_bits bits =
    let cq = requantize_mat ~bits candidates in
    let qq = Array.map (fun (q, l) -> (requantize ~bits q, l)) queries in
    Ml.Template.recognition_accuracy ~metric:ml_metric ~candidates:cq qq
  in
  let short =
    let base =
      match metric with `L1 -> "Temp.Match.L1" | `L2 -> "Temp.Match.L2"
    in
    if (width, height) = (16, 16) then base
    else Printf.sprintf "%s-%dx%d" base width height
  in
  {
    name = "Template matching (" ^ short ^ ")";
    short;
    abstract_tasks = Graph.n_tasks graph;
    graph;
    per_decision_program = program;
    banks = Program.max_banks program;
    conv_workload =
      {
        Conv.name = short;
        macs = n_candidates * dims;
        fetch_words = n_candidates * dims;
        banks = Program.max_banks program;
      };
    conv_opt_bits = conv_opt_bits_for ~ref_acc:reference_accuracy ~acc_at_bits;
    reference_accuracy;
    is_classifier = true;
    evaluate;
    stats = None;
  }

let template_sized = memo_by template_bench
let template_l1 () = template_sized (`L1, (16, 16))
let template_l2 () = template_sized (`L2, (16, 16))

(* ------------------------------------------------------------------ *)
(* Linear SVM: face detection, 16x16 + bias                            *)
(* ------------------------------------------------------------------ *)

let svm =
  memo (fun () ->
      let width = 16 and height = 16 in
      let rng = Rng.create 303 in
      let data = Ml.Dataset.Faces.detection rng ~width ~height ~n:600 in
      let train, test = Ml.Dataset.train_test_split data ~test_fraction:0.25 in
      let model = Ml.Svm.train rng ~data:train ~epochs:30 ~lambda:0.003 in
      let reference_accuracy = Ml.Svm.accuracy model test in
      let dims = (width * height) + 1 in
      let weights = Ml.Svm.augmented_weights model in
      let kernel =
        Dsl.kernel ~name:"svm"
          ~decls:
            [
              Dsl.matrix "W" ~rows:1 ~cols:dims;
              Dsl.vector "x" ~len:dims;
              Dsl.out_vector "out" ~len:1;
            ]
          [
            Dsl.for_store ~iterations:1 ~out:"out"
              (Dsl.sthreshold 0.0 (Dsl.dot "W" "x"));
          ]
      in
      let graph = compile_exn kernel in
      let program = codegen_exn graph in
      let augment q = Array.append q [| 1.0 |] in
      let queries = Array.map (fun s -> augment s.Ml.Dataset.features) test in
      let labels = Array.map (fun s -> s.Ml.Dataset.label) test in
      let evaluate =
        make_classifier_eval ~graph
          ~bind_static:(fun b -> Runtime.bind_matrix b "W" [| weights |])
          ~bind_query:(fun b q -> Runtime.bind_vector b "x" q)
          ~queries ~labels
          ~decide:(fun r -> if (final_values r).(0) > 0.5 then 1 else 0)
          ~reference_accuracy
      in
      let acc_at_bits bits =
        let wq = requantize ~bits weights in
        let correct = ref 0 in
        Array.iteri
          (fun i q ->
            let qq = requantize ~bits q in
            let d = Ml.Linalg.dot wq qq in
            if (if d > 0.0 then 1 else 0) = labels.(i) then incr correct)
          queries;
        float_of_int !correct /. float_of_int (Array.length queries)
      in
      {
        name = "Linear SVM (face detection)";
        short = "Linear SVM";
        abstract_tasks = Graph.n_tasks graph;
        graph;
        per_decision_program = program;
        banks = Program.max_banks program;
        conv_workload =
          {
            Conv.name = "Linear SVM";
            macs = dims;
            fetch_words = dims;
            banks = Program.max_banks program;
          };
        conv_opt_bits =
          conv_opt_bits_for ~ref_acc:reference_accuracy ~acc_at_bits;
        reference_accuracy;
        is_classifier = true;
        evaluate;
        stats = None;
      })

(* ------------------------------------------------------------------ *)
(* k-NN L1 / L2: character recognition, 128 stored samples, 16x16      *)
(* ------------------------------------------------------------------ *)

let knn_bench (metric, (width, height)) =
  let n_train = 128 and n_test = 80 and k = 5 in
  let rng = Rng.create (404 + (width * height)) in
  let data =
    Ml.Dataset.Digits.generate rng ~width ~height ~n:(n_train + n_test)
  in
  let train = Array.sub data 0 n_train in
  let test = Array.sub data n_train n_test in
  let ml_metric = match metric with `L1 -> Ml.Knn.L1 | `L2 -> Ml.Knn.L2 in
  let reference_accuracy = Ml.Knn.accuracy ~metric:ml_metric ~k ~train test in
  let dims = width * height in
  let body =
    match metric with
    | `L1 -> Dsl.l1_distance "W" "x"
    | `L2 -> Dsl.l2_distance "W" "x"
  in
  let kernel =
    Dsl.kernel
      ~name:(match metric with `L1 -> "knn_l1" | `L2 -> "knn_l2")
      ~decls:
        [
          Dsl.matrix "W" ~rows:n_train ~cols:dims;
          Dsl.vector "x" ~len:dims;
          Dsl.out_vector "out" ~len:n_train;
        ]
      [ Dsl.for_store ~iterations:n_train ~out:"out" body ]
  in
  let graph = compile_exn kernel in
  let program = codegen_exn graph in
  let stored = Array.map (fun s -> s.Ml.Dataset.features) train in
  let queries = Array.map (fun s -> s.Ml.Dataset.features) test in
  let labels = Array.map (fun s -> s.Ml.Dataset.label) test in
  let decide r =
    Ml.Knn.classify_from_distances ~k ~train (final_values r)
  in
  let evaluate =
    make_classifier_eval ~graph
      ~bind_static:(fun b -> Runtime.bind_matrix b "W" stored)
      ~bind_query:(fun b q -> Runtime.bind_vector b "x" q)
      ~queries ~labels ~decide ~reference_accuracy
  in
  let acc_at_bits bits =
    let trainq =
      Array.map
        (fun s ->
          { s with Ml.Dataset.features = requantize ~bits s.Ml.Dataset.features })
        train
    in
    let testq =
      Array.map
        (fun s ->
          { s with Ml.Dataset.features = requantize ~bits s.Ml.Dataset.features })
        test
    in
    Ml.Knn.accuracy ~metric:ml_metric ~k ~train:trainq testq
  in
  let short =
    let base = match metric with `L1 -> "k-NN L1" | `L2 -> "k-NN L2" in
    if (width, height) = (16, 16) then base
    else Printf.sprintf "%s-%dx%d" base width height
  in
  {
    name = "k-NN (" ^ short ^ ", character recognition)";
    short;
    abstract_tasks = Graph.n_tasks graph;
    graph;
    per_decision_program = program;
    banks = Program.max_banks program;
    conv_workload =
      {
        Conv.name = short;
        macs = n_train * dims;
        fetch_words = n_train * dims;
        banks = Program.max_banks program;
      };
    conv_opt_bits = conv_opt_bits_for ~ref_acc:reference_accuracy ~acc_at_bits;
    reference_accuracy;
    is_classifier = true;
    evaluate;
    stats = None;
  }

let knn_sized = memo_by knn_bench
let knn_l1 () = knn_sized (`L1, (16, 16))
let knn_l2 () = knn_sized (`L2, (16, 16))

(* ------------------------------------------------------------------ *)
(* PCA feature extraction: 4 components of 16x16 faces                 *)
(* ------------------------------------------------------------------ *)

let pca =
  memo (fun () ->
      let width = 16 and height = 16 in
      let rng = Rng.create 505 in
      let data = Ml.Dataset.Faces.detection rng ~width ~height ~n:200 in
      let samples = Array.map (fun s -> s.Ml.Dataset.features) data in
      let model = Ml.Pca.fit rng ~data:samples ~n_components:4 ~iterations:30 in
      let dims = width * height in
      let kernel =
        Dsl.kernel ~name:"pca"
          ~decls:
            [
              Dsl.matrix "W" ~rows:4 ~cols:dims;
              Dsl.vector "x" ~len:dims;
              Dsl.out_vector "out" ~len:4;
            ]
          [ Dsl.for_store ~iterations:4 ~out:"out" (Dsl.dot "W" "x") ]
      in
      let graph = compile_exn kernel in
      let program = codegen_exn graph in
      let test = Array.sub samples 0 40 in
      (* Accuracy proxy for a non-classifier: 1 − mean relative feature
         error against the float reference. *)
      let feature_fidelity ?(seed = 42) ?(profile = Bank.Silicon) ?prepare
          ?recovery ?banks ?pool ?kernel_mode ?(batch = 1) ~swings () =
        let g = apply_swings graph swings in
        let banks =
          match banks with Some b -> b | None -> Runtime.required_banks g
        in
        let machine = silicon_machine ~profile ~banks ~seed () in
        (match prepare with Some f -> f machine | None -> ());
        let total_err = ref 0.0 in
        Array.iter
          (fun x ->
            let centered = Ml.Linalg.sub x model.Ml.Pca.mean in
            let reference = Ml.Pca.project model x in
            let b = Runtime.bindings () in
            Runtime.bind_matrix b "W" model.Ml.Pca.components;
            Runtime.bind_vector b "x" centered;
            let rs =
              run_batch_exn ?recovery ?pool ?kernel_mode machine g b ~batch
            in
            let scale = Float.max 1e-6 (Ml.Linalg.max_abs reference) in
            Array.iter
              (fun r ->
                let got = final_values r in
                let err =
                  Ml.Linalg.max_abs (Ml.Linalg.sub got reference) /. scale
                in
                total_err := !total_err +. err)
              rs)
          test;
        let fidelity =
          Float.max 0.0
            (1.0 -. (!total_err /. float_of_int (Array.length test * batch)))
        in
        {
          promise_accuracy = fidelity;
          reference_accuracy = 1.0;
          mismatch = 1.0 -. fidelity;
        }
      in
      {
        name = "Feature extraction (PCA, face detection)";
        short = "PCA";
        abstract_tasks = Graph.n_tasks graph;
        graph;
        per_decision_program = program;
        banks = Program.max_banks program;
        conv_workload =
          {
            Conv.name = "PCA";
            macs = 4 * dims;
            fetch_words = 4 * dims;
            banks = Program.max_banks program;
          };
        conv_opt_bits = 8;
        reference_accuracy = 1.0;
        is_classifier = false;
        evaluate = feature_fidelity;
        stats = None;
      })

(* ------------------------------------------------------------------ *)
(* Linear regression: 4 AbstractTasks over 8192 2-D samples            *)
(* ------------------------------------------------------------------ *)

let linreg =
  memo (fun () ->
      let n = 8192 and cols = 4096 in
      let rng = Rng.create 606 in
      let u, v =
        Ml.Dataset.Linreg2d.generate rng ~n ~slope:0.6 ~intercept:0.15
          ~noise:0.05
      in
      let reference = Ml.Linreg.fit u v in
      let rows = n / cols in
      let kernel =
        Dsl.kernel ~name:"linreg"
          ~decls:
            [
              Dsl.matrix "U" ~rows ~cols;
              Dsl.matrix "V" ~rows ~cols;
              Dsl.vector "Vvec" ~len:n;
            ]
          [
            Dsl.mean "U";
            Dsl.mean "V";
            Dsl.mean_square "U";
            Dsl.mean_product "U" "Vvec";
          ]
      in
      let graph = compile_exn kernel in
      let program = codegen_exn graph in
      let bind b =
        Runtime.bind_flat b "U" u ~cols;
        Runtime.bind_flat b "V" v ~cols;
        Runtime.bind_vector b "Vvec" v
      in
      let fit_of_run r =
        match
          List.map (fun (_, o) -> o.Runtime.values.(0)) r.Runtime.outputs
        with
        | [ mean_u; mean_v; mean_u2; mean_uv ] ->
            Ml.Linreg.of_statistics ~mean_u ~mean_v ~mean_u2 ~mean_uv
        | _ -> invalid_arg "linreg: expected four statistics"
      in
      let evaluate ?(seed = 42) ?(profile = Bank.Silicon) ?prepare ?recovery
          ?banks ?pool ?kernel_mode ?(batch = 1) ~swings () =
        let g = apply_swings graph swings in
        let banks =
          match banks with Some b -> b | None -> Runtime.required_banks g
        in
        let machine = silicon_machine ~profile ~banks ~seed () in
        (match prepare with Some f -> f machine | None -> ());
        let b = Runtime.bindings () in
        bind b;
        let rs = run_batch_exn ?recovery ?pool ?kernel_mode machine g b ~batch in
        let rel a b = Float.abs (a -. b) /. Float.max 0.05 (Float.abs b) in
        (* mean fidelity over the batch's fits; batch 1 is the
           historical single-fit evaluation. *)
        let total = ref 0.0 in
        Array.iter
          (fun r ->
            let fit = fit_of_run r in
            let err =
              Float.max
                (rel fit.Ml.Linreg.slope reference.Ml.Linreg.slope)
                (rel fit.Ml.Linreg.intercept reference.Ml.Linreg.intercept)
            in
            total := !total +. Float.max 0.0 (1.0 -. err))
          rs;
        let fidelity = !total /. float_of_int batch in
        {
          promise_accuracy = fidelity;
          reference_accuracy = 1.0;
          mismatch = 1.0 -. fidelity;
        }
      in
      {
        name = "Linear regression (2-D synthetic)";
        short = "Linear Reg.";
        abstract_tasks = Graph.n_tasks graph;
        graph;
        per_decision_program = program;
        banks = Program.max_banks program;
        conv_workload =
          {
            Conv.name = "Linear Reg.";
            macs = 4 * n;
            fetch_words = 2 * n;
            banks = Program.max_banks program;
          };
        conv_opt_bits = 8;
        reference_accuracy = 1.0;
        is_classifier = false;
        evaluate;
        stats = None;
      })

(* ------------------------------------------------------------------ *)
(* DNN-1/2/3: MNIST-like digit recognition                             *)
(* ------------------------------------------------------------------ *)

type dnn_variant = D1 | D2 | D3

let dnn_sizes = function
  | D1 -> [ 784; 128; 10 ]
  | D2 -> [ 784; 256; 128; 10 ]
  | D3 -> [ 784; 512; 256; 128; 10 ]

let dnn_name = function D1 -> "DNN-1" | D2 -> "DNN-2" | D3 -> "DNN-3"

let dnn_build variant =
  let sizes = dnn_sizes variant in
  let width = 28 and height = 28 in
  let rng = Rng.create 707 in
  let data = Ml.Dataset.Digits.generate rng ~width ~height ~n:1100 in
  let train, test = Ml.Dataset.train_test_split data ~test_fraction:0.1 in
  let test = Array.sub test 0 (min 60 (Array.length test)) in
  let model = Ml.Mlp.create rng ~sizes ~hidden_activation:Ml.Mlp.Sigmoid in
  Ml.Mlp.train model rng ~data:train ~epochs:3 ~lr:0.15;
  let reference_accuracy = Ml.Mlp.accuracy model test in
  let stats = Precision.of_mlp model (Array.sub test 0 (min 40 (Array.length test))) in
  (* One for_store loop per layer; intermediate activations chain tasks. *)
  let n_layers = List.length sizes - 1 in
  let layer_out i = if i = n_layers - 1 then "y" else Printf.sprintf "h%d" i in
  let layer_in i = if i = 0 then "x" else layer_out (i - 1) in
  let fan_in i = List.nth sizes i and fan_out i = List.nth sizes (i + 1) in
  let decls =
    Dsl.vector "x" ~len:(List.hd sizes)
    :: List.concat
         (List.init n_layers (fun i ->
              [
                Dsl.matrix (Printf.sprintf "W%d" i) ~rows:(fan_out i)
                  ~cols:(fan_in i);
                Dsl.out_vector (layer_out i) ~len:(fan_out i);
              ]))
  in
  (* Hidden layers apply the PWL sigmoid; the output layer fuses the
     decision into Class-4 max (argmax(z) = argmax(sigmoid(z)), and the
     saturating PWL sigmoid would tie confident classes). *)
  let stmts =
    List.init n_layers (fun i ->
        let body = Dsl.dot (Printf.sprintf "W%d" i) (layer_in i) in
        if i = n_layers - 1 then
          Dsl.for_store ~iterations:(fan_out i) ~out:(layer_out i) body
        else
          Dsl.for_store ~iterations:(fan_out i) ~out:(layer_out i)
            (Dsl.sigmoid body))
    @ [ Dsl.argmax (layer_out (n_layers - 1)) ]
  in
  let kernel = Dsl.kernel ~name:(dnn_name variant) ~decls stmts in
  let graph = compile_exn kernel in
  let program = codegen_exn graph in
  let queries = Array.map (fun s -> s.Ml.Dataset.features) test in
  let labels = Array.map (fun s -> s.Ml.Dataset.label) test in
  let bind_static b =
    List.iteri
      (fun i layer ->
        Runtime.bind_matrix b (Printf.sprintf "W%d" i) layer.Ml.Mlp.weights)
      (Array.to_list model.Ml.Mlp.layers)
  in
  let evaluate =
    make_classifier_eval ~graph ~bind_static
      ~bind_query:(fun b q -> Runtime.bind_vector b "x" q)
      ~queries ~labels ~decide:final_decision ~reference_accuracy
  in
  let macs =
    List.fold_left ( + ) 0 (List.init n_layers (fun i -> fan_in i * fan_out i))
  in
  let acc_at_bits bits =
    let q =
      {
        Ml.Mlp.layers =
          Array.map
            (fun l ->
              { l with Ml.Mlp.weights = requantize_mat ~bits l.Ml.Mlp.weights })
            model.Ml.Mlp.layers;
      }
    in
    Ml.Mlp.accuracy q test
  in
  {
    name = dnn_name variant ^ " (multilayer perceptron, digits)";
    short = dnn_name variant;
    abstract_tasks = Graph.n_tasks graph;
    graph;
    per_decision_program = program;
    banks = Program.max_banks program;
    conv_workload =
      {
        Conv.name = dnn_name variant;
        macs;
        fetch_words = macs;
        banks = Program.max_banks program;
      };
    conv_opt_bits = conv_opt_bits_for ~ref_acc:reference_accuracy ~acc_at_bits;
    reference_accuracy;
    is_classifier = true;
    evaluate;
    stats = Some stats;
  }

let dnn1 = memo (fun () -> dnn_build D1)
let dnn2 = memo (fun () -> dnn_build D2)
let dnn3 = memo (fun () -> dnn_build D3)

let dnn = function D1 -> dnn1 () | D2 -> dnn2 () | D3 -> dnn3 ()

(* ------------------------------------------------------------------ *)
(* Suites                                                              *)
(* ------------------------------------------------------------------ *)

let fig10_suite () =
  [
    matched_filter ();
    template_l1 ();
    template_l2 ();
    svm ();
    knn_l1 ();
    knn_l2 ();
    pca ();
    linreg ();
  ]

let size_variants () =
  [
    matched_filter_sized 256;
    matched_filter_sized 512;
    matched_filter_sized 1024;
    template_sized (`L1, (16, 16));
    template_sized (`L1, (22, 23));
    template_sized (`L1, (32, 33));
    knn_sized (`L1, (16, 16));
    knn_sized (`L1, (22, 23));
    knn_sized (`L1, (32, 33));
  ]

let fig12_suite () =
  [
    matched_filter ();
    template_l1 ();
    template_l2 ();
    svm ();
    knn_l1 ();
    knn_l2 ();
    dnn D1;
    dnn D2;
    dnn D3;
  ]

(* ------------------------------------------------------------------ *)
(* Derived metrics                                                     *)
(* ------------------------------------------------------------------ *)

let program_at_swings b swings =
  codegen_exn (apply_swings b.graph swings)

let promise_energy b ~swings =
  Model.program_energy (program_at_swings b swings)

let promise_cycles b = Model.program_cycles b.per_decision_program
let max_swings b = List.init b.abstract_tasks (fun _ -> 7)

let ( let* ) = Result.bind

let optimize ?pool b ~pm =
  match b.stats with
  | Some stats ->
      (* Analytic path (multi-task DNNs). *)
      let* g, _bits = Swing_opt.optimize_graph b.graph ~stats ~pm in
      let swings =
        List.map
          (fun id -> (Graph.task g id).At.swing)
          (Graph.topological_order g)
      in
      Ok (swings, b.evaluate ?pool ~swings ())
  | None ->
      if b.abstract_tasks <> 1 then
        Error
          (Printf.sprintf
             "%s: brute-force sweep applies to single-task kernels only"
             b.short)
      else
        let simulate s = (b.evaluate ?pool ~swings:[ s ] ()).promise_accuracy in
        let energy_at s = Model.total (promise_energy b ~swings:[ s ]) in
        let r =
          Swing_opt.optimize_single ~simulate ~energy_at
            ~reference_accuracy:b.reference_accuracy ~pm
        in
        Ok
          ( [ r.Swing_opt.chosen ],
            b.evaluate ?pool ~swings:[ r.Swing_opt.chosen ] () )

(* ------------------------------------------------------------------ *)
(* State-of-the-art comparison configurations (§6.2)                   *)
(* ------------------------------------------------------------------ *)

let knn_soa_program ~metric =
  let body =
    match metric with
    | `L1 -> Dsl.l1_distance "W" "x"
    | `L2 -> Dsl.l2_distance "W" "x"
  in
  let kernel =
    Dsl.kernel ~name:"knn_soa"
      ~decls:
        [
          Dsl.matrix "W" ~rows:128 ~cols:128;
          Dsl.vector "x" ~len:128;
          Dsl.out_vector "out" ~len:128;
        ]
      [ Dsl.for_store ~iterations:128 ~out:"out" body ]
  in
  codegen_exn (compile_exn kernel)

let dnn_soa () =
  let b = dnn D3 in
  let program = b.per_decision_program in
  let energy = Model.total (Model.program_energy_steady program) in
  (* The paper's 36-bank configuration processes a decision stream: row
     chunks of one layer run concurrently on separate bank groups and
     successive layers pipeline across samples. The allocator packs the
     chunks and the sustained decision period is the slowest level. *)
  let levels =
    List.map
      (fun id ->
        let at = Graph.task b.graph id in
        match
          Promise_arch.Layout.plan ~vector_len:at.At.vector_len
            ~rows:at.At.loop_iterations ()
        with
        | Ok plan -> plan.Promise_arch.Layout.tasks
        | Error _ -> 1)
      (Graph.topological_order b.graph)
  in
  let delay_ns =
    match
      Promise_compiler.Allocator.of_program ~total_banks:36 ~levels program
    with
    | Ok plan ->
        float_of_int plan.Promise_compiler.Allocator.pipelined_interval
    | Error _ -> float_of_int (Model.program_steady_cycles program)
  in
  (program, energy, delay_ns)
