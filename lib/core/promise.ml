(** PROMISE: a programmable mixed-signal ML accelerator — ISA, simulator,
    energy models, compiler, and benchmarks (Srivastava et al.,
    ISCA 2018), reproduced in OCaml.

    This module is the public umbrella API: it re-exports every layer
    and offers a few one-call entry points. See README.md for a tour.

    {2 Layers}
    - {!Isa} — the Task instruction set: opcodes, encoding, assembly.
    - {!Analog} — swing/noise/leakage/ADC behavioral models.
    - {!Arch} — the bank/machine functional + cycle simulator.
    - {!Energy} — Table-3 energy model and the CONV/CM/SoA baselines.
    - {!Ir} — SSA, the tensor DSL, AbstractTasks and the PROMISE pass.
    - {!Analysis} — the lint stack: whole-program ISA verification,
      SSA validation, interval overflow analysis (promise-lint).
    - {!Compiler} — backend, precision analysis, swing optimization,
      host runtime.
    - {!Ml} — reference ML algorithms, training, synthetic datasets.
    - {!Benchmarks} — the nine Table-2 workloads, end to end. *)

module Isa = struct
  module Opcode = Promise_isa.Opcode
  module Op_param = Promise_isa.Op_param
  module Task = Promise_isa.Task
  module Encode = Promise_isa.Encode
  module Asm = Promise_isa.Asm
  module Program = Promise_isa.Program
  module Extensions = Promise_isa.Extensions
end

module Analog = struct
  module Rng = Promise_analog.Rng
  module Swing = Promise_analog.Swing
  module Noise = Promise_analog.Noise
  module Lut = Promise_analog.Lut
  module Leakage = Promise_analog.Leakage
  module Adc = Promise_analog.Adc
  module Pwm = Promise_analog.Pwm
end

module Arch = struct
  module Params = Promise_arch.Params
  module Timing = Promise_arch.Timing
  module Bitcell_array = Promise_arch.Bitcell_array
  module Xreg = Promise_arch.Xreg
  module Th_unit = Promise_arch.Th_unit
  module Bank = Promise_arch.Bank
  module Crossbank = Promise_arch.Crossbank
  module Layout = Promise_arch.Layout
  module Machine = Promise_arch.Machine
  module Kernel = Promise_arch.Kernel
  module Trace = Promise_arch.Trace
  module Scheduler = Promise_arch.Scheduler
  module Faults = Promise_arch.Faults
  module Selftest = Promise_arch.Selftest
  module Ctrl = Promise_arch.Ctrl
end

module Energy = struct
  module Tables = Promise_energy.Tables
  module Model = Promise_energy.Model
  module Conv = Promise_energy.Conv
  module Cm = Promise_energy.Cm
  module Scaling = Promise_energy.Scaling
  module Soa = Promise_energy.Soa
  module Dma = Promise_energy.Dma
end

module Ir = struct
  module Ssa = Promise_ir.Ssa
  module Dsl = Promise_ir.Dsl
  module Abstract_task = Promise_ir.Abstract_task
  module Graph = Promise_ir.Graph
  module Pattern = Promise_ir.Pattern
  module Sexp_frontend = Promise_ir.Sexp_frontend
end

module Analysis = struct
  module Dataflow = Promise_analysis.Dataflow
  module Ssa_check = Promise_analysis.Ssa_check
  module Isa_check = Promise_analysis.Isa_check
  module Interval = Promise_analysis.Interval
  module Liveness = Promise_analysis.Liveness
  module Regpressure = Promise_analysis.Regpressure
  module Timing_check = Promise_analysis.Timing_check
  module Lint = Promise_analysis.Driver
end

module Compiler = struct
  module Lower = Promise_compiler.Lower
  module Precision = Promise_compiler.Precision
  module Swing_opt = Promise_compiler.Swing_opt
  module Runtime = Promise_compiler.Runtime
  module Allocator = Promise_compiler.Allocator
  module Pipeline = Promise_compiler.Pipeline
end

module Ml = struct
  module Linalg = Promise_ml.Linalg
  module Fixed_point = Promise_ml.Fixed_point
  module Dataset = Promise_ml.Dataset
  module Mlp = Promise_ml.Mlp
  module Svm = Promise_ml.Svm
  module Pca = Promise_ml.Pca
  module Knn = Promise_ml.Knn
  module Template = Promise_ml.Template
  module Matched_filter = Promise_ml.Matched_filter
  module Linreg = Promise_ml.Linreg
  module Kmeans = Promise_ml.Kmeans
  module Random_forest = Promise_ml.Random_forest
  module Metrics = Promise_ml.Metrics
end

module Error = Promise_core.Error
module Diag = Promise_core.Diag
module Pool = Promise_core.Pool
module Queue_bounded = Promise_core.Queue_bounded
module Histogram = Promise_core.Histogram
module Quant = Promise_core.Quant
module Clock = Promise_core.Clock
module Retry = Promise_core.Retry
module Incident = Promise_core.Incident
module Checkpoint = Promise_core.Checkpoint
module Supervisor = Promise_core.Supervisor
module Ipc = Promise_core.Ipc
module Fleet = Promise_core.Fleet
module Validate = Promise_core.Validate
module Failpoint = Promise_core.Failpoint
module Benchmarks = Benchmarks
module Report = Report
module Validation = Validation
module Campaign = Campaign
module Serve = Serve

(** [compile kernel] — DSL → SSA → PROMISE pass → IR graph. *)
let compile = Promise_compiler.Pipeline.compile

(** [compile_to_binary kernel] — all the way to encoded Tasks. *)
let compile_to_binary = Promise_compiler.Pipeline.compile_to_binary

(** [run ?machine kernel bindings] — compile and execute. *)
let run = Promise_compiler.Pipeline.run

(** [energy_report program] — Eq. (6) breakdown of an ISA program. *)
let energy_report = Promise_energy.Model.program_energy

(** [run_batch ?machine kernel bindings ~batch] — compile and execute
    [batch] decisions (bit-identical to [batch] sequential {!run}s). *)
let run_batch = Promise_compiler.Pipeline.run_batch

(** [check_env ()] — validate every [PROMISE_*] environment variable a
    run consults, with typed errors instead of silent fallbacks: a
    typo'd [PROMISE_JOBS=fuor] fails loudly at CLI startup rather than
    quietly running at the default width. The kernel-mode value list
    mirrors [Arch.Machine.kernel_mode_of_env]; the batch range mirrors
    [Arch.Machine.default_batch]. *)
let check_env () =
  Promise_core.Validate.all
    [
      Result.map ignore
        (Promise_core.Validate.env_int ~name:"PROMISE_JOBS" ~min:1 ~max:64);
      Result.map ignore
        (Promise_core.Validate.env_enum ~name:"PROMISE_KERNEL_MODE"
           ~values:[ "fused"; "reference"; "ref"; "scalar" ]);
      Result.map ignore
        (Promise_core.Validate.env_int ~name:"PROMISE_BATCH" ~min:1 ~max:4096);
      Result.map ignore
        (Promise_core.Validate.env_int ~name:"PROMISE_SERVE_QUEUE" ~min:1
           ~max:1_048_576);
      Result.map ignore
        (Promise_core.Validate.env_int ~name:"PROMISE_SERVE_BATCH" ~min:1
           ~max:4096);
      Result.map ignore
        (Promise_core.Validate.env_int ~name:"PROMISE_SERVE_FLUSH_US" ~min:1
           ~max:10_000_000);
      Result.map ignore
        (Promise_core.Validate.env_int
           ~name:"PROMISE_SERVE_BREAKER_THRESHOLD" ~min:1 ~max:10_000);
      Result.map ignore
        (Promise_core.Validate.env_int ~name:"PROMISE_SERVE_DWELL_BUDGET_US"
           ~min:1 ~max:10_000_000);
      (* PROMISE_LINT_BASELINE: when set, the default --baseline for
         promise-lint — must name a readable file. *)
      (match Sys.getenv_opt "PROMISE_LINT_BASELINE" with
      | None | Some "" -> Ok ()
      | Some path ->
          if Sys.file_exists path && not (Sys.is_directory path) then Ok ()
          else
            Promise_core.Error.fail ~layer:"cli"
              ~code:Promise_core.Error.Invalid_operand
              ~context:[ ("flag", "PROMISE_LINT_BASELINE"); ("path", path) ]
              "baseline file does not exist");
      (* PROMISE_LINT_DENY: comma-separated diagnostic-code prefixes
         promoted from warning to error (e.g. "P-OVF,P-TIM"). *)
      (match Sys.getenv_opt "PROMISE_LINT_DENY" with
      | None | Some "" -> Ok ()
      | Some spec ->
          Promise_core.Validate.all
            (List.map
               (fun prefix ->
                 let ok =
                   prefix <> ""
                   && String.for_all
                        (function
                          | 'A' .. 'Z' | '0' .. '9' | '-' -> true | _ -> false)
                        prefix
                 in
                 if ok then Ok ()
                 else
                   Promise_core.Error.fail ~layer:"cli"
                     ~code:Promise_core.Error.Invalid_operand
                     ~context:
                       [ ("flag", "PROMISE_LINT_DENY"); ("prefix", prefix) ]
                     "deny prefixes are uppercase code prefixes like P-TIM")
               (String.split_on_char ',' (String.trim spec))));
      (match Sys.getenv_opt "PROMISE_FAILPOINTS" with
      | None -> Ok ()
      | Some s ->
          Result.map ignore (Promise_core.Failpoint.parse_spec s)
          |> Result.map_error (fun (e : Promise_core.Error.t) ->
                 {
                   e with
                   Promise_core.Error.context =
                     ("flag", "PROMISE_FAILPOINTS") :: e.Promise_core.Error.context;
                 }));
    ]

(** [version]. *)
let version = "1.0.0"
