let bits = Promise_core.Quant.bits
let scale = Promise_core.Quant.scale
let quantize = Promise_core.Quant.quantize8
let dequantize = Promise_core.Quant.dequantize8
let quantize_vec = Array.map quantize
let dequantize_vec = Array.map dequantize
let quantize_mat = Array.map quantize_vec

let normalize_by max_abs ?(headroom = 0.99) scale_fn data =
  if max_abs <= 0.0 then (scale_fn 1.0 data, 1.0)
  else
    let k = max_abs /. headroom in
    (scale_fn (1.0 /. k) data, k)

let normalize_mat ?headroom m =
  normalize_by (Linalg.mat_max_abs m) ?headroom
    (fun k -> Array.map (Linalg.scale k))
    m

let normalize_vec ?headroom v =
  normalize_by (Linalg.max_abs v) ?headroom Linalg.scale v

let quantization_step ~bits = 2.0 ** float_of_int (-(bits - 1))

let quantize_to_bits v ~bits =
  let step = quantization_step ~bits in
  let levels = Float.round (v /. step) in
  Float.max (-1.0) (Float.min (1.0 -. step) (levels *. step))
