(** Backend code generation: AbstractTask → PROMISE Task (paper §4.3).

    The backend decides where the vecOp executes — Class-1 for fused
    add/subtract, Class-2 for multiplies (aREAD in Class-1) — maps the
    reduction and digital ops onto Class-2/4 opcodes, and computes the
    runtime-dependent fields (RPT_NUM, X_PRD, MULTI_BANK, addresses)
    from the {!Promise_arch.Layout.plan}. *)

open Promise_isa

(** [classes_of task] — the (Class-1, Class-2, Class-3, Class-4)
    opcodes for an AbstractTask, or [Error] for an unmappable
    combination (e.g. multiply composed with an absolute reduction). *)
val classes_of :
  Promise_ir.Abstract_task.t ->
  ( Opcode.class1 * Opcode.class2 * Opcode.class3 * Opcode.class4,
    Promise_core.Error.t )
  result

(** [threshold_code value] — quantize a normalized threshold in [-1, 1]
    to the 4-bit THRES_VAL field. *)
val threshold_code : float -> int

(** [lower_chunk ?terminal at ~plan ~chunk ~w_base ~xreg_base] — the ISA
    Task for one row chunk of the plan. [rpt_num] covers
    [chunk_rows × segments - 1] iterations; [acc_num] groups the
    segments; [x_prd] circulates the X addresses. [terminal] (default
    false) marks a task with no consumer: its sigmoid/ReLU results are
    the program's outputs and route to the output buffer at full
    digital precision instead of being re-quantized into X-REG. *)
val lower_chunk :
  ?terminal:bool ->
  Promise_ir.Abstract_task.t ->
  plan:Promise_arch.Layout.plan ->
  chunk:int ->
  w_base:int ->
  xreg_base:int ->
  (Task.t, Promise_core.Error.t) result

(** [lower ?terminal at ~plan] — all row chunks (w_base 0, xreg 0). *)
val lower :
  ?terminal:bool ->
  Promise_ir.Abstract_task.t ->
  plan:Promise_arch.Layout.plan ->
  (Task.t list, Promise_core.Error.t) result

(** [program_of_graph g] — lower every task of an IR graph (in
    topological order) into a single ISA program, named after the graph
    tasks. Uses each task's own layout plan. *)
val program_of_graph :
  Promise_ir.Graph.t -> (Program.t, Promise_core.Error.t) result
