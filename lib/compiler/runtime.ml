module At = Promise_ir.Abstract_task
module Graph = Promise_ir.Graph
module Machine = Promise_arch.Machine
module Layout = Promise_arch.Layout
module Bank = Promise_arch.Bank
module Params = Promise_arch.Params
module Th_unit = Promise_arch.Th_unit
module Selftest = Promise_arch.Selftest
module Fx = Promise_ml.Fixed_point
module E = Promise_core.Error
open Promise_isa

type bindings = {
  matrices : (string, float array array) Hashtbl.t;
  vectors : (string, float array) Hashtbl.t;
  flat_lengths : (string, int) Hashtbl.t;
}

let bindings () =
  {
    matrices = Hashtbl.create 8;
    vectors = Hashtbl.create 8;
    flat_lengths = Hashtbl.create 8;
  }

let bind_matrix b name m = Hashtbl.replace b.matrices name m
let bind_vector b name v = Hashtbl.replace b.vectors name v

let bind_flat b name data ~cols =
  if cols < 1 then invalid_arg "Runtime.bind_flat: cols must be >= 1";
  let len = Array.length data in
  let rows = (len + cols - 1) / cols in
  let m =
    Array.init rows (fun r ->
        Array.init cols (fun c ->
            let i = (r * cols) + c in
            if i < len then data.(i) else 0.0))
  in
  Hashtbl.replace b.matrices name m;
  Hashtbl.replace b.flat_lengths name len

type task_output = {
  values : float array;
  decision : (int * float) option;
}

type recovery = {
  max_retries : int;
  digital_fallback : bool;
  canary_tolerance : float;
  excluded_banks : int list;
  spared_lanes : int list;
}

let default_recovery =
  {
    max_retries = 2;
    digital_fallback = true;
    canary_tolerance = 0.25;
    excluded_banks = [];
    spared_lanes = [];
  }

let recovery_of_report (r : Selftest.report) =
  let excluded =
    List.sort_uniq compare
      (List.filter_map
         (fun (f : Selftest.finding) ->
           match f.Selftest.kind with
           | Selftest.Dead_bank -> Some f.Selftest.bank
           | Selftest.Dead_adc { stall_cycles } when stall_cycles = max_int ->
               Some f.Selftest.bank
           | _ -> None)
         r.Selftest.findings)
  in
  let spared =
    List.sort_uniq compare
      (List.filter_map
         (fun (f : Selftest.finding) ->
           match f.Selftest.kind with
           | Selftest.Stuck_lane { lane; _ } | Selftest.Dead_lane { lane } ->
               Some lane
           | _ -> None)
         r.Selftest.findings)
  in
  { default_recovery with excluded_banks = excluded; spared_lanes = spared }

type recovery_stats = {
  retries : int;
  fallbacks : int;
  canary_failures : int;
  spared_lanes : int list;
  excluded_banks : int list;
}

let no_recovery_stats =
  {
    retries = 0;
    fallbacks = 0;
    canary_failures = 0;
    spared_lanes = [];
    excluded_banks = [];
  }

type counters = {
  mutable c_retries : int;
  mutable c_fallbacks : int;
  mutable c_canary_failures : int;
}

type run_result = {
  outputs : (int * task_output) list;
  machine : Machine.t;
  stats : recovery_stats;
}

let ( let* ) = Result.bind
let fail ?code ?context fmt =
  Printf.ksprintf (fun msg -> E.fail ~layer:"runtime" ?code ?context msg) fmt

let required_banks ?max_lanes g =
  List.fold_left
    (fun acc (_, at) ->
      match
        Layout.plan ?max_lanes ~vector_len:at.At.vector_len
          ~rows:at.At.loop_iterations ()
      with
      | Ok p -> max acc p.Layout.banks
      | Error _ -> acc)
    1 (Graph.tasks g)

(* Joint or independent quantization scales; returns (w_codes, x_codes
   option, rescale) where true value = rescale x (digital value computed
   from the quantized data). *)
let quantize_operands (at : At.t) w x_opt =
  let headroom = 0.99 in
  let scale_of max_abs = if max_abs <= 0.0 then 1.0 else max_abs /. headroom in
  let quantize_mat_scaled k m =
    Array.map (Array.map (fun v -> Fx.quantize (v /. k))) m
  in
  let quantize_vec_scaled k v = Array.map (fun e -> Fx.quantize (e /. k)) v in
  match at.At.vec_op with
  | At.Vo_mul_signed | At.Vo_mul_unsigned ->
      let x = Option.get x_opt in
      let kw = scale_of (Promise_ml.Linalg.mat_max_abs w) in
      let kx = scale_of (Promise_ml.Linalg.max_abs x) in
      (quantize_mat_scaled kw w, Some (quantize_vec_scaled kx x), kw *. kx)
  | At.Vo_add | At.Vo_sub ->
      let x = Option.get x_opt in
      let k =
        scale_of
          (Float.max
             (Promise_ml.Linalg.mat_max_abs w)
             (Promise_ml.Linalg.max_abs x))
      in
      let rescale =
        match at.At.red_op with
        | At.Ro_sum | At.Ro_sum_abs -> k
        | At.Ro_sum_square -> k *. k
        | At.Ro_sum_compare -> 1.0
      in
      (quantize_mat_scaled k w, Some (quantize_vec_scaled k x), rescale)
  | At.Vo_none ->
      let kw = scale_of (Promise_ml.Linalg.mat_max_abs w) in
      let rescale =
        match at.At.red_op with
        | At.Ro_sum | At.Ro_sum_abs -> kw
        | At.Ro_sum_square -> kw *. kw
        | At.Ro_sum_compare -> 1.0
      in
      (quantize_mat_scaled kw w, None, rescale)

let resolve_w g b id (at : At.t) =
  let from_edge =
    List.exists
      (fun (_, port) -> Graph.equal_port port Graph.W_input)
      (Graph.predecessors g id)
  in
  if from_edge then
    fail ~code:E.Unsupported
      ~context:[ ("task", at.At.name) ]
      "W produced by another task is not supported"
  else
    match Hashtbl.find_opt b.matrices at.At.w with
    | None ->
        fail ~code:E.Invalid_operand
          ~context:[ ("task", at.At.name) ]
          "unbound W matrix %S" at.At.w
    | Some m ->
        if Array.length m < at.At.loop_iterations then
          fail ~code:E.Invalid_operand
            ~context:[ ("task", at.At.name) ]
            "W matrix %S has %d rows, task needs %d" at.At.w (Array.length m)
            at.At.loop_iterations
        else Ok (Array.sub m 0 at.At.loop_iterations)

let resolve_x g b outputs id (at : At.t) =
  if not (At.uses_x at) then Ok None
  else
    let from_edge =
      List.find_opt
        (fun (_, port) -> Graph.equal_port port Graph.X_input)
        (Graph.predecessors g id)
    in
    match from_edge with
    | Some (pid, _) -> (
        match Hashtbl.find_opt outputs pid with
        | Some out -> Ok (Some out.values)
        | None ->
            fail ~code:E.Internal
              ~context:[ ("task", at.At.name) ]
              "producer %d has no output yet" pid)
    | None -> (
        match Hashtbl.find_opt b.vectors at.At.x with
        | Some v -> Ok (Some v)
        | None ->
            fail ~code:E.Invalid_operand
              ~context:[ ("task", at.At.name) ]
              "unbound X vector %S" at.At.x)

(* ADC range matching: a digital preview of every per-bank charge-share
   mean picks the largest power-of-two pre-ADC gain that keeps the
   aggregate within ~0.7 of full scale (headroom for analog noise).
   Mirrors Bank's gain staging exactly, minus noise and LUT shaping. *)
let ideal_partial_mean (at : At.t) ~w_slice ~x_slice ~lanes =
  let acc = ref 0.0 in
  for lane = 0 to lanes - 1 do
    let w = float_of_int w_slice.(lane) /. 128.0 in
    let x =
      match x_slice with
      | Some xs -> float_of_int xs.(lane) /. 128.0
      | None -> 0.0
    in
    let s1 =
      match at.At.vec_op with
      | At.Vo_add -> (w +. x) /. 2.0
      | At.Vo_sub -> (w -. x) /. 2.0
      | At.Vo_mul_signed -> w *. x
      | At.Vo_mul_unsigned -> Float.abs w *. Float.abs x
      | At.Vo_none -> w
    in
    let v =
      match (at.At.vec_op, at.At.red_op) with
      | (At.Vo_mul_signed | At.Vo_mul_unsigned), _ -> s1
      | _, At.Ro_sum -> s1
      | _, At.Ro_sum_abs -> Float.abs s1
      | _, At.Ro_sum_square -> s1 *. s1
      | _, At.Ro_sum_compare -> if s1 >= 0.0 then 1.0 else 0.0
    in
    acc := !acc +. v
  done;
  !acc /. float_of_int lanes

let estimate_adc_gain (at : At.t) (plan : Layout.plan) ~w_codes ~x_for_row =
  let lanes = plan.Layout.lanes_per_bank in
  let max_abs = ref 0.0 in
  Array.iteri
    (fun r w_row ->
      let x_row = x_for_row r in
      for bank = 0 to plan.Layout.banks - 1 do
        for segment = 0 to plan.Layout.segments - 1 do
          let w_slice = Layout.slice_of_vector plan w_row ~bank ~segment in
          let x_slice =
            Option.map
              (fun x -> Layout.slice_of_vector plan x ~bank ~segment)
              x_row
          in
          let m = ideal_partial_mean at ~w_slice ~x_slice ~lanes in
          max_abs := Float.max !max_abs (Float.abs m)
        done
      done)
    w_codes;
  let target = 0.7 in
  let rec grow g =
    if g >= 64.0 then 64.0
    else if 2.0 *. g *. !max_abs <= target then grow (2.0 *. g)
    else g
  in
  if !max_abs <= 0.0 then 64.0 else grow 1.0

let better_decision class4 (a : int * float) (b : (int * float) option) =
  match b with
  | None -> Some a
  | Some (_, bv) ->
      let _, av = a in
      let keep_a =
        match class4 with
        | Opcode.C4_min -> av < bv
        | Opcode.C4_max -> av > bv
        | _ -> false
      in
      if keep_a then Some a else b

let dest_xreg_index = Params.xreg_depth - 1

(* The digital reference for a chunk (the canary): the same per-bank
   charge-share means the analog path computes, with noise, LUT shaping
   and ADC quantization removed, fed through an identical TH unit. *)
let ideal_chunk (at : At.t) ~plan ~th ~w_rows ~x_row =
  let th_sim = Th_unit.create th in
  let emitted = ref [] in
  let collect (emit : Th_unit.emit) =
    match emit.Th_unit.des with
    | Opcode.Des_output_buffer -> emitted := emit.Th_unit.value :: !emitted
    | Opcode.Des_acc | Opcode.Des_xreg | Opcode.Des_write_buffer ->
        emitted := emit.Th_unit.value :: !emitted
  in
  let rows = Array.length w_rows in
  for i = 0 to (rows * plan.Layout.segments) - 1 do
    let r = i / plan.Layout.segments in
    let segment = i mod plan.Layout.segments in
    let combined = ref 0.0 in
    for bank = 0 to plan.Layout.banks - 1 do
      let w_slice = Layout.slice_of_vector plan w_rows.(r) ~bank ~segment in
      let x_slice =
        Option.map (fun x -> Layout.slice_of_vector plan x ~bank ~segment) x_row
      in
      combined :=
        !combined
        +. ideal_partial_mean at ~w_slice ~x_slice
             ~lanes:plan.Layout.lanes_per_bank
    done;
    match Th_unit.push th_sim !combined with
    | Some e -> collect e
    | None -> ()
  done;
  (match Th_unit.finish th_sim with Some e -> collect e | None -> ());
  (List.rev !emitted, Th_unit.argext th_sim)

let canary_ok ~tolerance actual reference =
  List.length actual = List.length reference
  && List.for_all2
       (fun a r ->
         Float.abs (a -. r) <= tolerance *. Float.max 1.0 (Float.abs r))
       actual reference

(* Bank groups whose banks are all healthy (graceful degradation:
   excluded banks hold no data and execute no tasks). *)
let allowed_groups ~excluded ~(plan : Layout.plan) ~groups =
  let max_group = max 1 (groups / plan.Layout.banks) in
  let ok g =
    let first = g * plan.Layout.banks in
    not
      (List.exists
         (fun b -> b >= first && b < first + plan.Layout.banks)
         excluded)
  in
  List.filter ok (List.init max_group (fun g -> g))

let run_task ?pool ?kernel_mode machine ~(recovery : recovery option)
    ~counters (at : At.t) ~terminal ~w ~x_opt ~original_n =
  let* () =
    match x_opt with
    | Some x
      when Array.length x <> at.At.vector_len
           && Array.length x <> at.At.vector_len * at.At.loop_iterations ->
        fail ~code:E.Invalid_operand
          ~context:[ ("task", at.At.name) ]
          "X has %d elements, expected %d (broadcast) or %d (streaming)"
          (Array.length x) at.At.vector_len
          (at.At.vector_len * at.At.loop_iterations)
    | _ -> Ok ()
  in
  let streaming =
    match x_opt with
    | Some x ->
        at.At.loop_iterations > 1
        && Array.length x = at.At.vector_len * at.At.loop_iterations
    | None -> false
  in
  let w_codes, x_codes, rescale = quantize_operands at w x_opt in
  let groups = Machine.n_banks machine in
  (* Lane sparing: plan around the faulty columns and scatter slices
     onto the healthy physical lanes. *)
  let spared =
    List.sort_uniq compare
      (List.filter
         (fun l -> l >= 0 && l < Params.lanes)
         (match recovery with Some r -> r.spared_lanes | None -> []))
  in
  let fallback_enabled =
    match recovery with Some r -> r.digital_fallback | None -> false
  in
  (* When every lane is faulty the spare map is empty and no analog
     plan exists; with digital fallback enabled the whole task degrades
     to the host-side digital reference instead of failing. *)
  let lane_map, no_healthy_lanes =
    if spared = [] then (None, false)
    else
      let map = Layout.spare_map ~faulty:spared in
      if Array.length map = 0 then (None, true) else (Some map, false)
  in
  let* () =
    if no_healthy_lanes && not fallback_enabled then
      fail ~code:E.Capacity
        ~context:[ ("task", at.At.name) ]
        "every lane is spared and digital fallback is disabled"
    else Ok ()
  in
  let max_lanes = Option.map Array.length lane_map in
  let excluded =
    match recovery with Some r -> r.excluded_banks | None -> []
  in
  let values = ref [] and decision = ref None in
  let run_chunks plan ~adc_gain ~rows_of_chunk ~w_rows_of_chunk ~x_of_chunk
      ~n_chunks =
    let* template =
      Lower.lower_chunk ~terminal at ~plan ~chunk:0 ~w_base:0 ~xreg_base:0
    in
    let class4 = template.Task.class4 in
    let gain =
      float_of_int plan.Layout.lanes_per_bank
      *. Bank.analog_scale template *. rescale
    in
    let lane_mask =
      Option.map
        (fun map -> Layout.lane_mask_of_map map ~used:plan.Layout.lanes_per_bank)
        lane_map
    in
    (* [`Digital]: no analog resource can serve this task (every bank
       group excluded, or every lane spared) — with fallback enabled,
       every chunk is served by the host-side digital reference. *)
    let* mode =
      match allowed_groups ~excluded ~plan ~groups with
      | [] when fallback_enabled -> Ok `Digital
      | [] ->
          fail ~code:E.Capacity
            ~context:[ ("task", at.At.name) ]
            "every bank group overlaps an excluded bank"
      | _ when no_healthy_lanes -> Ok `Digital
      | l -> Ok (`Analog l)
    in
    let rec go chunk row_offset =
      if chunk >= n_chunks then Ok ()
      else
        let rows_c = rows_of_chunk chunk in
        let* task =
          if rows_c = plan.Layout.rows_per_task then Ok template
          else
            Lower.lower_chunk ~terminal at
              ~plan:
                {
                  plan with
                  Layout.rows = rows_c;
                  rows_per_task = rows_c;
                  tasks = 1;
                }
              ~chunk:0 ~w_base:0 ~xreg_base:0
        in
        let w_rows = w_rows_of_chunk chunk rows_c in
        let x_chunk = x_of_chunk chunk in
        let th =
          {
            Th_unit.op = class4;
            acc_num = task.Task.op_param.Op_param.acc_num;
            threshold = at.At.threshold;
            gain;
            des = task.Task.op_param.Op_param.des;
          }
        in
        let* outcome =
          match mode with
          | `Digital ->
              counters.c_fallbacks <- counters.c_fallbacks + 1;
              Ok (`Fallback (ideal_chunk at ~plan ~th ~w_rows ~x_row:x_chunk))
          | `Analog allowed ->
              let group = List.nth allowed (chunk mod List.length allowed) in
              Machine.load_weights ?lane_map machine ~group ~base:0 ~plan
                w_rows;
              (match x_chunk with
              | Some xc ->
                  Machine.load_x ?lane_map machine ~group ~xreg_base:0 ~plan xc
              | None -> ());
              let launch =
                {
                  Machine.task;
                  bank_group = group;
                  active_lanes = plan.Layout.lanes_per_bank;
                  adc_gain;
                  th;
                  dest_xreg = dest_xreg_index;
                }
              in
              (* The canary-checked retry/fallback path applies to chunks
                 whose emissions go to the output buffer: re-executing
                 them is side-effect-free (X-REG/write-buffer staging is
                 not). *)
              let checked =
                recovery <> None
                && Opcode.equal_destination task.Task.op_param.Op_param.des
                     Opcode.Des_output_buffer
              in
              if not checked then
                let* result =
                  Machine.execute ?lane_mask ?pool ?kernel_mode machine launch
                in
                Ok (`Accepted result)
              else
                let r = Option.get recovery in
                let reference, ref_argext =
                  ideal_chunk at ~plan ~th ~w_rows ~x_row:x_chunk
                in
                let rec attempt tries =
                  let* result =
                    Machine.execute ?lane_mask ?pool ?kernel_mode machine
                      launch
                  in
                  if
                    canary_ok ~tolerance:r.canary_tolerance
                      result.Machine.emitted reference
                  then Ok (`Accepted result)
                  else begin
                    counters.c_canary_failures <-
                      counters.c_canary_failures + 1;
                    if tries < r.max_retries then begin
                      counters.c_retries <- counters.c_retries + 1;
                      attempt (tries + 1)
                    end
                    else if r.digital_fallback then begin
                      counters.c_fallbacks <- counters.c_fallbacks + 1;
                      Ok (`Fallback (reference, ref_argext))
                    end
                    else
                      fail ~code:E.Retry_exhausted
                        ~context:
                          [
                            ("task", at.At.name);
                            ("chunk", string_of_int chunk);
                          ]
                        "analog result failed its canary bound %d times"
                        (r.max_retries + 1)
                  end
                in
                attempt 0
        in
        (match outcome with
        | `Accepted result ->
            values := !values @ result.Machine.emitted @ result.Machine.xreg_out;
            (match result.Machine.argext with
            | Some (gidx, v) ->
                decision :=
                  better_decision class4 (row_offset + gidx, v) !decision
            | None -> ())
        | `Fallback (reference, ref_argext) ->
            values := !values @ reference;
            (match ref_argext with
            | Some (gidx, v) ->
                decision :=
                  better_decision class4 (row_offset + gidx, v) !decision
            | None -> ()));
        go (chunk + 1) (row_offset + rows_c)
    in
    go 0 0
  in
  let typed_plan p = Result.map_error (E.of_string ~layer:"runtime") p in
  let* () =
    if streaming then
      let x = Option.get x_codes in
      let* plan =
        typed_plan
          (Layout.plan ?max_lanes ~vector_len:at.At.vector_len ~rows:1 ())
      in
      let x_row r = Array.sub x (r * at.At.vector_len) at.At.vector_len in
      let adc_gain =
        estimate_adc_gain at plan ~w_codes ~x_for_row:(fun r -> Some (x_row r))
      in
      run_chunks plan ~adc_gain
        ~rows_of_chunk:(fun _ -> 1)
        ~w_rows_of_chunk:(fun chunk _ -> [| w_codes.(chunk) |])
        ~x_of_chunk:(fun chunk -> Some (x_row chunk))
        ~n_chunks:at.At.loop_iterations
    else
      let* plan =
        typed_plan
          (Layout.plan ?max_lanes ~vector_len:at.At.vector_len
             ~rows:at.At.loop_iterations ())
      in
      let adc_gain =
        estimate_adc_gain at plan ~w_codes ~x_for_row:(fun _ -> x_codes)
      in
      run_chunks plan ~adc_gain
        ~rows_of_chunk:(fun chunk -> Layout.chunk_rows plan chunk)
        ~w_rows_of_chunk:(fun chunk rows_c ->
          Array.sub w_codes (chunk * plan.Layout.rows_per_task) rows_c)
        ~x_of_chunk:(fun _ -> x_codes)
        ~n_chunks:plan.Layout.tasks
  in
  let values = Array.of_list !values in
  (* Decision tasks surface their extremum; mean tasks reduce on host. *)
  match at.At.digital_op with
  | At.Do_mean ->
      let total = Array.fold_left ( +. ) 0.0 values in
      Ok { values = [| total /. float_of_int original_n |]; decision = None }
  | At.Do_min | At.Do_max -> Ok { values; decision = !decision }
  | At.Do_none | At.Do_sigmoid | At.Do_relu | At.Do_threshold ->
      Ok { values; decision = None }

let run ?machine ?recovery ?pool ?kernel_mode g b =
  let machine =
    match machine with
    | Some m -> m
    | None ->
        Machine.create
          {
            Machine.banks = required_banks g;
            profile = Bank.Silicon;
            noise_seed = Some 42;
          }
  in
  (* Consulted before the first task dispatches, so the machine is
     untouched when the injected fault surfaces — retrying the whole
     program is stream-safe. *)
  let* () =
    match Promise_core.Failpoint.check "runtime.run" with
    | Some Promise_core.Failpoint.Fail ->
        E.fail ~layer:"runtime" ~code:E.Fault
          ~context:[ ("injected", "true") ]
          "injected runtime fault"
    | Some (Promise_core.Failpoint.Delay ns) ->
        Promise_core.Clock.sleep_ms (Int64.to_float ns /. 1e6);
        Ok ()
    | Some Promise_core.Failpoint.Interrupt | None -> Ok ()
  in
  let counters = { c_retries = 0; c_fallbacks = 0; c_canary_failures = 0 } in
  let order = Graph.topological_order g in
  let outputs = Hashtbl.create 8 in
  let* ids =
    List.fold_left
      (fun acc id ->
        let* ids = acc in
        let at = Graph.task g id in
        let* w = resolve_w g b id at in
        let* x_opt = resolve_x g b outputs id at in
        let original_n =
          match Hashtbl.find_opt b.flat_lengths at.At.w with
          | Some n -> n
          | None -> at.At.vector_len * at.At.loop_iterations
        in
        let terminal = Graph.successors g id = [] in
        let* out =
          run_task ?pool ?kernel_mode machine ~recovery ~counters at ~terminal
            ~w ~x_opt ~original_n
        in
        Hashtbl.replace outputs id out;
        Ok (id :: ids))
      (Ok []) order
  in
  let ordered = List.rev ids in
  let stats =
    {
      retries = counters.c_retries;
      fallbacks = counters.c_fallbacks;
      canary_failures = counters.c_canary_failures;
      spared_lanes =
        (match recovery with Some r -> r.spared_lanes | None -> []);
      excluded_banks =
        (match recovery with Some r -> r.excluded_banks | None -> []);
    }
  in
  Ok
    {
      outputs = List.map (fun id -> (id, Hashtbl.find outputs id)) ordered;
      machine;
      stats;
    }

(* ------------------------------------------------------------------ *)
(* Batched execution                                                    *)
(* ------------------------------------------------------------------ *)

type batch_plan = { batch : int; single_node : bool }

let plan_batch g ~batch =
  if batch < 1 then invalid_arg "Runtime.plan_batch: batch must be >= 1";
  {
    batch;
    single_node = (match Graph.tasks g with [ _ ] -> true | _ -> false);
  }

(* The batched single-node fast path: every chunk loads its operands
   once and runs all [batch] decisions through
   [Machine.execute_batch]. [Ok None] — before any machine mutation —
   when the configuration can't take it:

   - streaming X re-loads X-REG per row (chunk count = row count, far
     beyond the group count);
   - a non-output-buffer destination feeds bank state forward;
   - more chunks than bank groups would interleave two chunks on one
     group's RNG streams, so chunk-major batching would consume them in
     a different order than decision-major sequential execution.

   When the chunks map to distinct groups, chunk-major is bit-identical
   to decision-major: each group's streams see exactly their own
   decisions in order, and operand loads are idempotent. *)
let run_task_batch ?pool ?kernel_mode machine (at : At.t) ~terminal ~w ~x_opt
    ~original_n ~batch =
  let* () =
    match x_opt with
    | Some x
      when Array.length x <> at.At.vector_len
           && Array.length x <> at.At.vector_len * at.At.loop_iterations ->
        fail ~code:E.Invalid_operand
          ~context:[ ("task", at.At.name) ]
          "X has %d elements, expected %d (broadcast) or %d (streaming)"
          (Array.length x) at.At.vector_len
          (at.At.vector_len * at.At.loop_iterations)
    | _ -> Ok ()
  in
  let streaming =
    match x_opt with
    | Some x ->
        at.At.loop_iterations > 1
        && Array.length x = at.At.vector_len * at.At.loop_iterations
    | None -> false
  in
  if streaming then Ok None
  else
    let w_codes, x_codes, rescale = quantize_operands at w x_opt in
    let groups = Machine.n_banks machine in
    let* plan =
      Result.map_error
        (E.of_string ~layer:"runtime")
        (Layout.plan ~vector_len:at.At.vector_len ~rows:at.At.loop_iterations
           ())
    in
    let adc_gain =
      estimate_adc_gain at plan ~w_codes ~x_for_row:(fun _ -> x_codes)
    in
    let* template =
      Lower.lower_chunk ~terminal at ~plan ~chunk:0 ~w_base:0 ~xreg_base:0
    in
    let n_chunks = plan.Layout.tasks in
    let allowed = allowed_groups ~excluded:[] ~plan ~groups in
    if
      (not
         (Opcode.equal_destination template.Task.op_param.Op_param.des
            Opcode.Des_output_buffer))
      || n_chunks > List.length allowed
    then Ok None
    else begin
      let class4 = template.Task.class4 in
      let gain =
        float_of_int plan.Layout.lanes_per_bank
        *. Bank.analog_scale template *. rescale
      in
      let values_d = Array.make batch [] in
      let decision_d = Array.make batch None in
      let rec go chunk row_offset =
        if chunk >= n_chunks then Ok ()
        else
          let rows_c = Layout.chunk_rows plan chunk in
          let* task =
            if rows_c = plan.Layout.rows_per_task then Ok template
            else
              Lower.lower_chunk ~terminal at
                ~plan:
                  {
                    plan with
                    Layout.rows = rows_c;
                    rows_per_task = rows_c;
                    tasks = 1;
                  }
                ~chunk:0 ~w_base:0 ~xreg_base:0
          in
          let w_rows =
            Array.sub w_codes (chunk * plan.Layout.rows_per_task) rows_c
          in
          let group = List.nth allowed (chunk mod List.length allowed) in
          Machine.load_weights machine ~group ~base:0 ~plan w_rows;
          (match x_codes with
          | Some xc -> Machine.load_x machine ~group ~xreg_base:0 ~plan xc
          | None -> ());
          let th =
            {
              Th_unit.op = class4;
              acc_num = task.Task.op_param.Op_param.acc_num;
              threshold = at.At.threshold;
              gain;
              des = task.Task.op_param.Op_param.des;
            }
          in
          let launch =
            {
              Machine.task;
              bank_group = group;
              active_lanes = plan.Layout.lanes_per_bank;
              adc_gain;
              th;
              dest_xreg = dest_xreg_index;
            }
          in
          let* results =
            Machine.execute_batch ?pool ?kernel_mode machine launch ~batch
          in
          Array.iteri
            (fun d (r : Machine.result) ->
              values_d.(d) <-
                values_d.(d) @ r.Machine.emitted @ r.Machine.xreg_out;
              match r.Machine.argext with
              | Some (gidx, v) ->
                  decision_d.(d) <-
                    better_decision class4 (row_offset + gidx, v) decision_d.(d)
              | None -> ())
            results;
          go (chunk + 1) (row_offset + rows_c)
      in
      let* () = go 0 0 in
      let outputs =
        Array.init batch (fun d ->
            let values = Array.of_list values_d.(d) in
            match at.At.digital_op with
            | At.Do_mean ->
                let total = Array.fold_left ( +. ) 0.0 values in
                {
                  values = [| total /. float_of_int original_n |];
                  decision = None;
                }
            | At.Do_min | At.Do_max -> { values; decision = decision_d.(d) }
            | At.Do_none | At.Do_sigmoid | At.Do_relu | At.Do_threshold ->
                { values; decision = None })
      in
      Ok (Some outputs)
    end

let run_batch ?plan ?machine ?recovery ?pool ?kernel_mode g b ~batch =
  if batch < 1 then
    E.fail ~layer:"runtime" ~code:E.Invalid_operand
      ~context:[ ("batch", string_of_int batch) ]
      "batch must be >= 1"
  else
    let bplan = match plan with Some p -> p | None -> plan_batch g ~batch in
    if bplan.batch <> batch then
      E.fail ~layer:"runtime" ~code:E.Invalid_operand
        ~context:
          [
            ("plan_batch", string_of_int bplan.batch);
            ("batch", string_of_int batch);
          ]
        "batch plan was computed for a different batch shape"
    else
      let machine =
        match machine with
        | Some m -> m
        | None ->
            Machine.create
              {
                Machine.banks = required_banks g;
                profile = Bank.Silicon;
                noise_seed = Some 42;
              }
      in
      let replay () =
        let rec go acc d =
          if d = batch then Ok (Array.of_list (List.rev acc))
          else
            match run ~machine ?recovery ?pool ?kernel_mode g b with
            | Ok r -> go (r :: acc) (d + 1)
            | Error e -> Error e
        in
        go [] 0
      in
      let fast =
        if (not bplan.single_node) || recovery <> None || batch = 1 then None
        else
          match Graph.tasks g with
          | [ (id, at) ] ->
              let attempt =
                let* w = resolve_w g b id at in
                let* x_opt = resolve_x g b (Hashtbl.create 1) id at in
                let original_n =
                  match Hashtbl.find_opt b.flat_lengths at.At.w with
                  | Some n -> n
                  | None -> at.At.vector_len * at.At.loop_iterations
                in
                let terminal = Graph.successors g id = [] in
                let* outs =
                  run_task_batch ?pool ?kernel_mode machine at ~terminal ~w
                    ~x_opt ~original_n ~batch
                in
                Ok (Option.map (fun o -> (id, o)) outs)
              in
              Some attempt
          | _ -> None
      in
      match fast with
      | Some (Ok (Some (id, outs))) ->
          Ok
            (Array.map
               (fun o ->
                 { outputs = [ (id, o) ]; machine; stats = no_recovery_stats })
               outs)
      | Some (Ok None) | None -> replay ()
      | Some (Error e) -> Error e

let output_of r id =
  match List.assoc_opt id r.outputs with
  | Some o -> Ok o
  | None ->
      E.fail ~layer:"runtime" ~code:E.Internal
        (Printf.sprintf "no output for node %d" id)

let final_output r =
  match List.rev r.outputs with
  | (_, o) :: _ -> Ok o
  | [] -> E.fail ~layer:"runtime" ~code:E.Internal "empty run result"

module For_tests = struct
  let estimate_adc_gain = estimate_adc_gain
end
