open Promise_isa
module Timing = Promise_arch.Timing

type assignment = {
  task : Task.t;
  level : int;
  first_bank : int;
  start_cycle : int;
  finish_cycle : int;
}

type plan = {
  assignments : assignment list;
  banks_used : int;
  makespan : int;
  pipelined_interval : int;
}

let ( let* ) = Result.bind

(* Pack one level's independent tasks into waves of bank groups. Tasks
   are placed greedily at the lowest free bank; when the machine is
   full, a new wave starts after the slowest task of the current one. *)
let pack_level ?(excluded = []) ~total_banks ~level ~level_start tasks =
  (* Lowest placement at or above [from] whose bank range avoids the
     excluded (faulted) banks. *)
  let find_slot from banks =
    let usable first =
      not (List.exists (fun b -> b >= first && b < first + banks) excluded)
    in
    let rec go first =
      if first + banks > total_banks then None
      else if usable first then Some first
      else go (first + 1)
    in
    go from
  in
  let* () =
    match
      List.find_opt (fun t -> find_slot 0 (Task.banks t) = None) tasks
    with
    | Some t ->
        Error
          (Printf.sprintf
             "task needs %d contiguous healthy banks but the machine has %d \
              total (%d excluded)"
             (Task.banks t) total_banks (List.length excluded))
    | None -> Ok ()
  in
  let assignments = ref [] in
  let wave_start = ref level_start in
  let next_bank = ref 0 in
  let wave_finish = ref level_start in
  let peak = ref 0 in
  List.iter
    (fun task ->
      let banks = Task.banks task in
      let first =
        match find_slot !next_bank banks with
        | Some f -> f
        | None ->
            (* close the wave *)
            wave_start := !wave_finish;
            next_bank := 0;
            Option.get (find_slot 0 banks)
      in
      let start_cycle = !wave_start in
      let finish_cycle = start_cycle + Timing.task_steady_cycles task in
      assignments :=
        { task; level; first_bank = first; start_cycle; finish_cycle }
        :: !assignments;
      next_bank := first + banks;
      peak := max !peak !next_bank;
      wave_finish := max !wave_finish finish_cycle)
    tasks;
  Ok (List.rev !assignments, !wave_finish, !peak)

let plan ?excluded ~total_banks tasks =
  if total_banks < 1 then Error "total_banks must be >= 1"
  else begin
    let levels =
      List.sort_uniq compare (List.map snd tasks)
    in
    let* assignments, makespan, peak =
      List.fold_left
        (fun acc level ->
          let* assignments, t, peak = acc in
          let level_tasks =
            List.filter_map
              (fun (task, l) -> if l = level then Some task else None)
              tasks
          in
          let* placed, finish, level_peak =
            pack_level ?excluded ~total_banks ~level ~level_start:t level_tasks
          in
          Ok (assignments @ placed, finish, max peak level_peak))
        (Ok ([], 0, 0))
        levels
    in
    (* sustained interval = the slowest level's span (first start to
       last finish within the level) *)
    let level_span level =
      let of_level = List.filter (fun a -> a.level = level) assignments in
      match of_level with
      | [] -> 0
      | _ ->
          let first =
            List.fold_left (fun m a -> min m a.start_cycle) max_int of_level
          in
          let last =
            List.fold_left (fun m a -> max m a.finish_cycle) 0 of_level
          in
          last - first
    in
    let pipelined_interval =
      List.fold_left (fun acc level -> max acc (level_span level)) 1 levels
    in
    let plan = { assignments; banks_used = peak; makespan; pipelined_interval } in
    (* Fail closed: re-verify the placement from first principles with
       the analysis-side interference check — two cycle-overlapping
       assignments sharing a bank would silently corrupt both weight
       sets, so a packing bug must surface as a lint error here, not
       as wrong numbers downstream. *)
    let* () =
      match
        Promise_analysis.Regpressure.check_allocation
          (List.mapi
             (fun index a ->
               {
                 Promise_analysis.Regpressure.index;
                 level = a.level;
                 first_bank = a.first_bank;
                 banks = Task.banks a.task;
                 start_cycle = a.start_cycle;
                 finish_cycle = a.finish_cycle;
               })
             plan.assignments)
      with
      | [] -> Ok ()
      | d :: _ -> Error (Promise_core.Diag.render d)
    in
    Ok plan
  end

let of_program ?excluded ~total_banks ~levels (program : Program.t) =
  let* tagged =
    let rec tag level remaining tasks acc =
      match (remaining, tasks) with
      | [], [] -> Ok (List.rev acc)
      | [], _ -> Error "levels cover fewer tasks than the program has"
      | 0 :: rest, tasks -> tag (level + 1) rest tasks acc
      | _ :: _, [] -> Error "levels cover more tasks than the program has"
      | n :: rest, task :: tasks ->
          tag level ((n - 1) :: rest) tasks ((task, level) :: acc)
    in
    tag 0 levels program.Program.tasks []
  in
  plan ?excluded ~total_banks tagged

let decisions_per_second p =
  1e9 /. (float_of_int (max 1 p.pipelined_interval) *. Promise_arch.Params.cycle_ns)
