(** The end-to-end compiler driver (paper Fig. 6): DSL ("Julia") →
    SSA → PROMISE pass (pattern match) → compiler IR → energy
    optimization → ISA code generation → runtime execution. *)

(** [compile kernel] — frontend + PROMISE pass: the IR graph with all
    swings at maximum (0b111). *)
val compile :
  Promise_ir.Dsl.kernel -> (Promise_ir.Graph.t, Promise_core.Error.t) result

(** [optimize ?guard_bits g ~stats ~pm] — the analytic energy
    optimization ({!Swing_opt.optimize_graph}). *)
val optimize :
  ?guard_bits:int ->
  Promise_ir.Graph.t ->
  stats:Precision.stats ->
  pm:float ->
  (Promise_ir.Graph.t * int, Promise_core.Error.t) result

(** [codegen g] — the binary-encodable ISA program. *)
val codegen :
  Promise_ir.Graph.t -> (Promise_isa.Program.t, Promise_core.Error.t) result

(** A full compilation report. *)
type report = {
  graph : Promise_ir.Graph.t;
  program : Promise_isa.Program.t;
  binary : bytes;
  assembly : string;
  search_space : int;  (** 8^tasks *)
}

(** [compile_to_binary kernel] — DSL all the way to bytes. *)
val compile_to_binary :
  Promise_ir.Dsl.kernel -> (report, Promise_core.Error.t) result

(** [run ?machine ?recovery kernel bindings] — compile and execute;
    [recovery] enables the runtime's graceful-degradation path. *)
val run :
  ?machine:Promise_arch.Machine.t ->
  ?recovery:Runtime.recovery ->
  Promise_ir.Dsl.kernel ->
  Runtime.bindings ->
  (Runtime.run_result, Promise_core.Error.t) result
