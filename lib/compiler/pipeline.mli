(** The end-to-end compiler driver (paper Fig. 6): DSL ("Julia") →
    SSA → PROMISE pass (pattern match) → compiler IR → energy
    optimization → ISA code generation → runtime execution. *)

(** Content-addressed compilation cache.

    Every stage below is memoized on an MD5 digest of its marshalled
    inputs (kernel for the frontend, graph for codegen, graph +
    precision stats + swing parameters for the optimizer), so repeated
    compilations in sweeps return the previously computed — immutable —
    result instead of re-running lowering and swing optimization.
    Thread-safe; only successful results are cached. *)
module Cache : sig
  type stats = { hits : int; misses : int; entries : int; evictions : int }

  val stats : unit -> stats
  val clear : unit -> unit
  (** Drop every entry and zero the hit/miss/eviction counters. *)

  val set_enabled : bool -> unit
  (** Default [true]; [set_enabled false] makes every stage recompute
      (and stops new insertions) until re-enabled. *)

  val is_enabled : unit -> bool

  val set_capacity : int option -> unit
  (** Bound each stage table to at most the given number of entries,
      evicting the least-recently-used entry on insert (a hit counts
      as use). [None] (the default) is unbounded — the historical
      sweep behavior. A long-lived daemon should set a bound: evicted
      models recompile on their next request, so correctness never
      depends on residency. Raises [Invalid_argument] on [Some n] with
      [n < 1]. *)

  val capacity : unit -> int option
end

(** [compile kernel] — frontend + PROMISE pass: the IR graph with all
    swings at maximum (0b111). *)
val compile :
  Promise_ir.Dsl.kernel -> (Promise_ir.Graph.t, Promise_core.Error.t) result

(** [optimize ?guard_bits g ~stats ~pm] — the analytic energy
    optimization ({!Swing_opt.optimize_graph}). *)
val optimize :
  ?guard_bits:int ->
  Promise_ir.Graph.t ->
  stats:Precision.stats ->
  pm:float ->
  (Promise_ir.Graph.t * int, Promise_core.Error.t) result

(** [codegen g] — the binary-encodable ISA program. *)
val codegen :
  Promise_ir.Graph.t -> (Promise_isa.Program.t, Promise_core.Error.t) result

(** A full compilation report. *)
type report = {
  graph : Promise_ir.Graph.t;
  program : Promise_isa.Program.t;
  binary : bytes;
  assembly : string;
  search_space : int;  (** 8^tasks *)
}

(** [compile_to_binary kernel] — DSL all the way to bytes. *)
val compile_to_binary :
  Promise_ir.Dsl.kernel -> (report, Promise_core.Error.t) result

(** [run ?machine ?recovery ?pool ?kernel_mode kernel bindings] —
    compile and execute; [recovery] enables the runtime's
    graceful-degradation path, [pool] parallelizes multi-bank task
    execution ({!Promise_arch.Machine.execute}), [kernel_mode] selects
    the fused or reference analog datapath. *)
val run :
  ?machine:Promise_arch.Machine.t ->
  ?recovery:Runtime.recovery ->
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:Promise_arch.Machine.kernel_mode ->
  Promise_ir.Dsl.kernel ->
  Runtime.bindings ->
  (Runtime.run_result, Promise_core.Error.t) result

(** [plan_for graph ~batch] — the memoized {!Runtime.plan_batch}. The
    cache key is the digest of [(graph, batch)] — the launch shape is
    part of the key, so a plan compiled for batch [1] is a cache miss
    (never a stale hit) at batch [8] and vice versa. Typed
    [Invalid_operand] when [batch < 1]. *)
val plan_for :
  Promise_ir.Graph.t ->
  batch:int ->
  (Runtime.batch_plan, Promise_core.Error.t) result

(** [run_batch ?machine ?recovery ?pool ?kernel_mode kernel bindings
    ~batch] — compile, fetch (or compute) the batch-shape-keyed
    dispatch plan, and execute [batch] decisions
    ({!Runtime.run_batch}). Bit-identical to [batch] sequential {!run}
    calls on the same machine. *)
val run_batch :
  ?machine:Promise_arch.Machine.t ->
  ?recovery:Runtime.recovery ->
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:Promise_arch.Machine.kernel_mode ->
  Promise_ir.Dsl.kernel ->
  Runtime.bindings ->
  batch:int ->
  (Runtime.run_result array, Promise_core.Error.t) result
