module E = Promise_core.Error

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Content-addressed compilation cache                                  *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  (* Keys are MD5 digests of the marshalled inputs (kernels, graphs and
     optimization parameters are pure data), so a cache hit means "same
     compilation problem" regardless of which sweep asked.  Only [Ok]
     results are stored; errors always recompute.  A single mutex
     guards all tables — compilation results are coarse enough that
     contention is irrelevant next to simulation cost.

     The cache is optionally bounded: a long-lived serving daemon
     compiles an open-ended stream of models, so without a bound the
     tables grow monotonically for the life of the process.  With
     [set_capacity (Some n)], each table keeps at most [n] entries and
     evicts its least-recently-used one on insert (every hit refreshes
     recency); an evicted model simply recompiles on its next use —
     correctness never depends on residency. *)

  type stats = { hits : int; misses : int; entries : int; evictions : int }

  let lock = Mutex.create ()
  let enabled = ref true
  let hits = ref 0
  let misses = ref 0
  let evictions = ref 0

  let capacity_ref : int option ref = ref None

  (* LRU recency: a global monotonic tick; each entry stores the tick
     of its last hit/insert, and eviction scans for the minimum.  The
     scan is O(table size), bounded by the capacity itself — trivial
     next to a compilation. *)
  let tick = ref 0

  let frontend_tbl : (string, Promise_ir.Graph.t * int ref) Hashtbl.t =
    Hashtbl.create 64

  let optimize_tbl : (string, (Promise_ir.Graph.t * int) * int ref) Hashtbl.t =
    Hashtbl.create 64

  let codegen_tbl : (string, Promise_isa.Program.t * int ref) Hashtbl.t =
    Hashtbl.create 64

  (* Batched dispatch plans are launch-shape-dependent artifacts: the
     key is digest (graph, batch), so a plan compiled for
     single-decision execution can never be served to a batched launch
     (and vice versa) — the runtime additionally rejects a mismatched
     plan with a typed error if one is forced past the cache. *)
  let plan_tbl : (string, Runtime.batch_plan * int ref) Hashtbl.t =
    Hashtbl.create 64

  let digest v = Digest.to_hex (Digest.string (Marshal.to_string v []))

  let set_enabled b = Mutex.protect lock (fun () -> enabled := b)
  let is_enabled () = Mutex.protect lock (fun () -> !enabled)

  let set_capacity c =
    (match c with
    | Some n when n < 1 ->
        invalid_arg "Pipeline.Cache.set_capacity: capacity must be >= 1"
    | _ -> ());
    Mutex.protect lock (fun () -> capacity_ref := c)

  let capacity () = Mutex.protect lock (fun () -> !capacity_ref)

  let clear () =
    Mutex.protect lock (fun () ->
        Hashtbl.reset frontend_tbl;
        Hashtbl.reset optimize_tbl;
        Hashtbl.reset codegen_tbl;
        Hashtbl.reset plan_tbl;
        hits := 0;
        misses := 0;
        evictions := 0)

  let stats () =
    Mutex.protect lock (fun () ->
        {
          hits = !hits;
          misses = !misses;
          evictions = !evictions;
          entries =
            Hashtbl.length frontend_tbl
            + Hashtbl.length optimize_tbl
            + Hashtbl.length codegen_tbl
            + Hashtbl.length plan_tbl;
        })

  (* Must be called with [lock] held. *)
  let evict_lru tbl =
    let victim = ref None in
    Hashtbl.iter
      (fun key (_, last) ->
        match !victim with
        | Some (_, best) when !last >= best -> ()
        | _ -> victim := Some (key, !last))
      tbl;
    match !victim with
    | Some (key, _) ->
        Hashtbl.remove tbl key;
        incr evictions
    | None -> ()

  (* [memo tbl key f] — serve [Ok] from [tbl], else compute.  The
     compute runs outside the lock: two domains racing on the same cold
     key duplicate work once rather than serializing all compilation. *)
  let memo tbl key f =
    let cached =
      Mutex.protect lock (fun () ->
          if not !enabled then None
          else
            match Hashtbl.find_opt tbl key with
            | Some (v, last) ->
                incr hits;
                incr tick;
                last := !tick;
                Some v
            | None ->
                incr misses;
                None)
    in
    match cached with
    | Some v -> Ok v
    | None -> (
        match f () with
        | Ok v as ok ->
            Mutex.protect lock (fun () ->
                if !enabled && not (Hashtbl.mem tbl key) then begin
                  (match !capacity_ref with
                  | Some cap ->
                      while Hashtbl.length tbl >= cap do
                        evict_lru tbl
                      done
                  | None -> ());
                  incr tick;
                  Hashtbl.add tbl key (v, ref !tick)
                end);
            ok
        | Error _ as err -> err)
end

(* ------------------------------------------------------------------ *)
(* Pipeline stages                                                      *)
(* ------------------------------------------------------------------ *)

let compile_uncached kernel =
  let ssa = Promise_ir.Dsl.lower kernel in
  (* Fail closed: every frontend output goes through the SSA validator
     so a pattern-matcher bug surfaces as a diagnostic, not a
     miscompile. *)
  let* () =
    match
      Promise_core.Diag.first_error
        (Promise_analysis.Ssa_check.validate ssa
        @ Promise_analysis.Liveness.check ssa
        @ Promise_analysis.Regpressure.check_function ssa)
    with
    | Some d -> Error (Promise_core.Diag.to_error ~layer:"frontend" d)
    | None -> Ok ()
  in
  Result.map_error
    (E.of_string ~layer:"frontend")
    (Promise_ir.Pattern.match_function ssa)

let compile kernel =
  Cache.memo Cache.frontend_tbl (Cache.digest kernel) (fun () ->
      compile_uncached kernel)

let optimize ?guard_bits g ~stats ~pm =
  Cache.memo Cache.optimize_tbl
    (Cache.digest (g, guard_bits, stats, pm))
    (fun () ->
      Result.map_error
        (E.of_string ~layer:"optimizer")
        (Swing_opt.optimize_graph ?guard_bits g ~stats ~pm))

let codegen g =
  Cache.memo Cache.codegen_tbl (Cache.digest g) (fun () ->
      let* program = Lower.program_of_graph g in
      (* Fail closed on the Task stream too: a shadowed X-REG store or
         an analog dwell past the leakage budget is a codegen bug, not
         a program to hand the machine. *)
      let* () =
        let tasks = program.Promise_isa.Program.tasks in
        match
          Promise_core.Diag.first_error
            (Promise_analysis.Liveness.check_program tasks
            @ Promise_analysis.Timing_check.check_program tasks)
        with
        | Some d -> Error (Promise_core.Diag.to_error ~layer:"compiler" d)
        | None -> Ok ()
      in
      Ok program)

type report = {
  graph : Promise_ir.Graph.t;
  program : Promise_isa.Program.t;
  binary : bytes;
  assembly : string;
  search_space : int;
}

let compile_to_binary kernel =
  let* graph = compile kernel in
  let* program = codegen graph in
  Ok
    {
      graph;
      program;
      binary = Promise_isa.Program.to_binary program;
      assembly = Promise_isa.Program.to_asm program;
      search_space =
        Swing_opt.search_space_size ~tasks:(Promise_ir.Graph.n_tasks graph);
    }

let run ?machine ?recovery ?pool ?kernel_mode kernel bindings =
  let* graph = compile kernel in
  Runtime.run ?machine ?recovery ?pool ?kernel_mode graph bindings

(* The plan is keyed on (graph, batch): the same graph at two batch
   widths is two distinct cache entries, so a single-decision plan can
   never be replayed for a batched launch. *)
let plan_for graph ~batch =
  if batch < 1 then
    E.fail ~layer:"compiler" ~code:E.Invalid_operand
      ~context:[ ("batch", string_of_int batch) ]
      "batch must be >= 1"
  else
    Cache.memo Cache.plan_tbl
      (Cache.digest (graph, batch))
      (fun () -> Ok (Runtime.plan_batch graph ~batch))

let run_batch ?machine ?recovery ?pool ?kernel_mode kernel bindings ~batch =
  let* graph = compile kernel in
  let* plan = plan_for graph ~batch in
  Runtime.run_batch ~plan ?machine ?recovery ?pool ?kernel_mode graph bindings
    ~batch
