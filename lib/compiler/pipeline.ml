module E = Promise_core.Error

let ( let* ) = Result.bind

let compile kernel =
  let ssa = Promise_ir.Dsl.lower kernel in
  Result.map_error
    (E.of_string ~layer:"frontend")
    (Promise_ir.Pattern.match_function ssa)

let optimize ?guard_bits g ~stats ~pm =
  Result.map_error
    (E.of_string ~layer:"optimizer")
    (Swing_opt.optimize_graph ?guard_bits g ~stats ~pm)

let codegen = Lower.program_of_graph

type report = {
  graph : Promise_ir.Graph.t;
  program : Promise_isa.Program.t;
  binary : bytes;
  assembly : string;
  search_space : int;
}

let compile_to_binary kernel =
  let* graph = compile kernel in
  let* program = codegen graph in
  Ok
    {
      graph;
      program;
      binary = Promise_isa.Program.to_binary program;
      assembly = Promise_isa.Program.to_asm program;
      search_space =
        Swing_opt.search_space_size ~tasks:(Promise_ir.Graph.n_tasks graph);
    }

let run ?machine ?recovery kernel bindings =
  let* graph = compile kernel in
  Runtime.run ?machine ?recovery graph bindings
