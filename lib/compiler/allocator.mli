(** Bank allocation for concurrent Task execution (paper Fig. 2(b)).

    Each PAGE has a local CTRL, so Tasks with no data dependence can run
    on disjoint bank groups simultaneously — that is how the paper's
    36-bank DNN reaches 558 K decisions/s: every layer's row chunks run
    in parallel and the layers pipeline across the decision stream.
    This module formalizes that resource assignment and its makespan,
    replacing per-benchmark ad-hoc arithmetic.

    A program is a list of (task, dependence-level) pairs: tasks on the
    same level are independent (row chunks of one layer); levels are
    sequential dataflow (layers). *)

type assignment = {
  task : Promise_isa.Task.t;
  level : int;
  first_bank : int;  (** first bank of the group this task occupies *)
  start_cycle : int;
  finish_cycle : int;
}

type plan = {
  assignments : assignment list;
  banks_used : int;  (** peak simultaneous banks *)
  makespan : int;  (** cycles for one whole pass (all levels) *)
  pipelined_interval : int;
      (** sustained per-decision interval when successive decisions
          pipeline across levels: the slowest level's span *)
}

(** [plan ?excluded ~total_banks tasks] — greedy left-to-right packing
    of each level's tasks onto bank groups; a level's tasks that do not
    fit simultaneously serialize in waves. [excluded] lists faulted
    banks no task may occupy (graceful degradation: placement skips
    over them). [Error] when a single task needs more contiguous
    healthy banks than the machine has. Tasks use their steady-state
    duration ({!Promise_arch.Timing.task_steady_cycles}). *)
val plan :
  ?excluded:int list ->
  total_banks:int ->
  (Promise_isa.Task.t * int) list ->
  (plan, string) result

(** [of_program ~total_banks ~levels program] — attach levels to a
    lowered program (e.g. the chunk counts per layer from the
    compiler) and plan it. [levels] lists how many consecutive tasks
    belong to each level; their sum must equal the program length. *)
val of_program :
  ?excluded:int list ->
  total_banks:int ->
  levels:int list ->
  Promise_isa.Program.t ->
  (plan, string) result

(** [decisions_per_second p] — 1e9 / (pipelined_interval × 1 ns). *)
val decisions_per_second : plan -> float
