(** The PROMISE host runtime (paper §4.3).

    Given a compiler-IR graph and float data bindings, the runtime
    - quantizes W/X to the 8-bit bit-cell format, choosing a joint scale
      for distance (add/subtract) kernels and independent scales for
      multiply kernels, and folds the scales plus the analog gain
      staging into the TH digital pre-gain so every emitted value is in
      the original units;
    - plans the data layout ({!Promise_arch.Layout}), stages weights and
      the X vector into the machine, and launches one Task per row
      chunk (RPT_NUM ≤ 128);
    - streams element-wise two-array reductions (the Linear-Regression
      [mean_product]) one row per launch, reloading X-REG each time —
      the paper's §6.2 re-access penalty;
    - chains DAG edges (a producer's output becomes the consumer's X),
      combines min/max decisions across chunks, and divides [Do_mean]
      accumulations by N on the host;
    - optionally degrades gracefully around known hardware faults
      ({!recovery}): lane sparing re-plans the layout over the healthy
      bit-cell columns, excluded banks execute no tasks, and a digital
      canary bounds every output-buffer chunk, retrying and finally
      falling back to the digital reference when the analog result is
      out of bounds. *)

type bindings

val bindings : unit -> bindings
val bind_matrix : bindings -> string -> float array array -> unit
val bind_vector : bindings -> string -> float array -> unit

(** [bind_flat b name data ~cols] — reshape a long 1-D array into a
    [⌈len/cols⌉ × cols] matrix binding (zero-padded), the layout the
    whole-array reductions expect. *)
val bind_flat : bindings -> string -> float array -> cols:int -> unit

type task_output = {
  values : float array;  (** per-row outputs, original units *)
  decision : (int * float) option;  (** fused argmin/argmax (row, value) *)
}

(** {2 Graceful degradation} *)

(** How to run in the presence of known faults. *)
type recovery = {
  max_retries : int;
      (** re-executions of a chunk whose canary fails (transients often
          pass on retry) *)
  digital_fallback : bool;
      (** after the retry budget, substitute the digital reference for
          the chunk instead of failing *)
  canary_tolerance : float;
      (** a chunk value [v] with digital reference [r] passes when
          [|v - r| <= tolerance * max 1 |r|] *)
  excluded_banks : int list;  (** banks that hold no data, run no task *)
  spared_lanes : int list;
      (** faulty physical lanes; layouts avoid them ({!Promise_arch.Layout.spare_map}) *)
}

val default_recovery : recovery
(** 2 retries, fallback on, tolerance 0.25, nothing excluded/spared. *)

(** [recovery_of_report r] — {!default_recovery} specialized to a BIST
    report: dead banks (and banks with every ADC unit dead) are
    excluded; stuck and dead lanes are spared. Offset/drift/transient
    findings are left to the canary + retry/fallback path. *)
val recovery_of_report : Promise_arch.Selftest.report -> recovery

type recovery_stats = {
  retries : int;  (** chunk re-executions triggered by the canary *)
  fallbacks : int;  (** chunks served from the digital reference *)
  canary_failures : int;  (** canary misses, including retried ones *)
  spared_lanes : int list;
  excluded_banks : int list;
}

val no_recovery_stats : recovery_stats

type run_result = {
  outputs : (int * task_output) list;  (** by IR node id, topo order *)
  machine : Promise_arch.Machine.t;
  stats : recovery_stats;
}

(** [required_banks ?max_lanes g] — banks the graph needs at one chunk
    per group (the runtime reuses groups when the machine is smaller).
    [max_lanes] mirrors the lane-sparing layout cap. *)
val required_banks : ?max_lanes:int -> Promise_ir.Graph.t -> int

(** [run ?machine ?recovery ?pool g b] — execute the graph. When
    [machine] is omitted, a default [Silicon]-profile machine with
    {!required_banks} banks (seeded 42) is created. Without [recovery]
    the runtime behaves exactly as before (no canary, full lane/bank
    use). When recovery leaves no analog resource at all — every bank
    group excluded, or all 128 lanes spared — and [digital_fallback] is
    on, every chunk is served by the digital reference (counted in
    [stats.fallbacks]) instead of failing; with fallback off this is a
    typed [Capacity] error. [pool] fans multi-bank task execution out
    across domains ({!Promise_arch.Machine.execute}); results are
    bit-identical at any job count. [kernel_mode] selects the fused
    compiled-kernel datapath or the scalar reference path
    ({!Promise_arch.Machine.kernel_mode}; also bit-identical). Errors
    are typed ({!Promise_core.Error.t}, layer ["runtime"] or
    ["compiler"]); unrecoverable canary misses surface as
    [Retry_exhausted]. *)
val run :
  ?machine:Promise_arch.Machine.t ->
  ?recovery:recovery ->
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:Promise_arch.Machine.kernel_mode ->
  Promise_ir.Graph.t ->
  bindings ->
  (run_result, Promise_core.Error.t) result

(** {2 Batched execution} *)

(** A launch-shape plan for batched execution: which dispatch strategy
    {!run_batch} takes for a (graph, batch) pair. Plans are cheap to
    compute but cacheable ({!Promise_compiler.Pipeline.Cache} keys them
    on the graph digest AND the batch shape — a plan for one batch
    width is rejected at another, never silently reused). *)
type batch_plan = private { batch : int; single_node : bool }

(** [plan_batch g ~batch] — analyze [g] for batched dispatch. Raises
    [Invalid_argument] when [batch < 1]. *)
val plan_batch : Promise_ir.Graph.t -> batch:int -> batch_plan

(** [run_batch ?plan ?machine ?recovery ?pool ?kernel_mode g b ~batch]
    — run [batch] independent decisions of the graph on one machine,
    returning decision [d]'s {!run_result} at index [d].

    Bit-identity contract: the results are exactly those of [batch]
    successive {!run} calls on the same machine. Single-node graphs
    whose chunks map to distinct bank groups with output-buffer
    destinations (and no [recovery]) load operands once per chunk and
    ride {!Promise_arch.Machine.execute_batch}; everything else —
    multi-node DAGs, streaming X, canary-checked recovery — replays
    {!run} sequentially, which is the same thing by definition.

    [plan] (default [plan_batch g ~batch]) supplies the cached dispatch
    analysis; a plan computed for a different batch shape is a typed
    [Invalid_operand] error. [Invalid_operand] too when [batch < 1]. *)
val run_batch :
  ?plan:batch_plan ->
  ?machine:Promise_arch.Machine.t ->
  ?recovery:recovery ->
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:Promise_arch.Machine.kernel_mode ->
  Promise_ir.Graph.t ->
  bindings ->
  batch:int ->
  (run_result array, Promise_core.Error.t) result

val output_of : run_result -> int -> (task_output, Promise_core.Error.t) result

(** [final_output r] — output of the last node in topological order. *)
val final_output : run_result -> (task_output, Promise_core.Error.t) result

(** Internals exposed for tests. *)
module For_tests : sig
  (** [estimate_adc_gain at plan ~w_codes ~x_for_row] — the power-of-two
      ADC range-matching gain the runtime would program (see DESIGN.md). *)
  val estimate_adc_gain :
    Promise_ir.Abstract_task.t ->
    Promise_arch.Layout.plan ->
    w_codes:int array array ->
    x_for_row:(int -> int array option) ->
    float
end
