open Promise_isa
module At = Promise_ir.Abstract_task
module Layout = Promise_arch.Layout
module E = Promise_core.Error

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun msg -> E.fail ~layer:"compiler" msg) fmt

let classes_of (at : At.t) =
  let avd asd = { Opcode.asd; avd = true } in
  let* class1, class2 =
    match (at.At.vec_op, at.At.red_op) with
    | At.Vo_add, At.Ro_sum -> Ok (Opcode.C1_aadd, avd Opcode.Asd_none)
    | At.Vo_sub, At.Ro_sum -> Ok (Opcode.C1_asubt, avd Opcode.Asd_none)
    | At.Vo_add, At.Ro_sum_abs -> Ok (Opcode.C1_aadd, avd Opcode.Asd_absolute)
    | At.Vo_sub, At.Ro_sum_abs -> Ok (Opcode.C1_asubt, avd Opcode.Asd_absolute)
    | At.Vo_add, At.Ro_sum_square -> Ok (Opcode.C1_aadd, avd Opcode.Asd_square)
    | At.Vo_sub, At.Ro_sum_square ->
        Ok (Opcode.C1_asubt, avd Opcode.Asd_square)
    | At.Vo_add, At.Ro_sum_compare ->
        Ok (Opcode.C1_aadd, avd Opcode.Asd_compare)
    | At.Vo_sub, At.Ro_sum_compare ->
        Ok (Opcode.C1_asubt, avd Opcode.Asd_compare)
    | At.Vo_mul_signed, At.Ro_sum ->
        Ok (Opcode.C1_aread, avd Opcode.Asd_sign_mult)
    | At.Vo_mul_unsigned, At.Ro_sum ->
        Ok (Opcode.C1_aread, avd Opcode.Asd_unsign_mult)
    | (At.Vo_mul_signed | At.Vo_mul_unsigned), _ ->
        fail "a multiply vecOp admits only a plain sum reduction"
    | At.Vo_none, At.Ro_sum -> Ok (Opcode.C1_aread, avd Opcode.Asd_none)
    | At.Vo_none, At.Ro_sum_abs ->
        Ok (Opcode.C1_aread, avd Opcode.Asd_absolute)
    | At.Vo_none, At.Ro_sum_square ->
        Ok (Opcode.C1_aread, avd Opcode.Asd_square)
    | At.Vo_none, At.Ro_sum_compare ->
        Ok (Opcode.C1_aread, avd Opcode.Asd_compare)
  in
  let class4 =
    match at.At.digital_op with
    | At.Do_none -> Opcode.C4_accumulate
    | At.Do_sigmoid -> Opcode.C4_sigmoid
    | At.Do_relu -> Opcode.C4_relu
    | At.Do_min -> Opcode.C4_min
    | At.Do_max -> Opcode.C4_max
    | At.Do_threshold -> Opcode.C4_threshold
    | At.Do_mean -> Opcode.C4_accumulate (* host divides by N *)
  in
  Ok (class1, class2, Opcode.C3_adc, class4)

let threshold_code value =
  let v = Float.max (-1.0) (Float.min 1.0 value) in
  let code = int_of_float (Float.round ((v +. 1.0) /. 2.0 *. 15.0)) in
  max 0 (min 15 code)

let destination_of ~terminal (at : At.t) =
  match at.At.digital_op with
  | (At.Do_sigmoid | At.Do_relu) when not terminal ->
      Opcode.Des_xreg (* intermediate activations: the next layer's X *)
  | At.Do_sigmoid | At.Do_relu | At.Do_none | At.Do_min | At.Do_max
  | At.Do_threshold | At.Do_mean ->
      Opcode.Des_output_buffer

let lower_chunk ?(terminal = false) (at : At.t) ~plan ~chunk ~w_base
    ~xreg_base =
  let* class1, class2, class3, class4 = classes_of at in
  if chunk < 0 || chunk >= plan.Layout.tasks then
    fail "chunk %d out of range" chunk
  else
    let rows = Layout.chunk_rows plan chunk in
    let iterations = rows * plan.Layout.segments in
    if iterations > 128 then fail "row chunk exceeds RPT_NUM capacity"
    else
      let op_param =
        {
          Op_param.swing = at.At.swing;
          acc_num = plan.Layout.segments - 1;
          w_addr = w_base;
          x_addr1 = xreg_base;
          x_addr2 = xreg_base;
          x_prd = Layout.x_prd plan;
          des = destination_of ~terminal at;
          thres_val = threshold_code at.At.threshold;
        }
      in
      Ok
        (Task.make ~op_param ~rpt_num:(iterations - 1)
           ~multi_bank:plan.Layout.multi_bank ~class1 ~class2 ~class3 ~class4
           ())

let lower ?terminal at ~plan =
  let rec chunks i acc =
    if i >= plan.Layout.tasks then Ok (List.rev acc)
    else
      let* task = lower_chunk ?terminal at ~plan ~chunk:i ~w_base:0 ~xreg_base:0 in
      chunks (i + 1) (task :: acc)
  in
  chunks 0 []

let program_of_graph g =
  let order = Promise_ir.Graph.topological_order g in
  let* tasks =
    List.fold_left
      (fun acc id ->
        let* tasks = acc in
        let at = Promise_ir.Graph.task g id in
        let* plan =
          Result.map_error
            (E.of_string ~layer:"compiler")
            (Layout.plan ~vector_len:at.At.vector_len
               ~rows:at.At.loop_iterations ())
        in
        let terminal = Promise_ir.Graph.successors g id = [] in
        let* lowered = lower ~terminal at ~plan in
        Ok (tasks @ lowered))
      (Ok []) order
  in
  let name =
    match Promise_ir.Graph.tasks g with
    | (_, t) :: _ -> t.At.name
    | [] -> "empty"
  in
  (* Fail closed: the emitted Task stream must pass the whole-program
     ISA verifier — a codegen bug becomes a typed error here instead
     of silent garbage in the simulator. *)
  match
    Promise_core.Diag.first_error
      (Promise_analysis.Isa_check.check_program tasks)
  with
  | Some d -> Error (Promise_core.Diag.to_error ~layer:"compiler" d)
  | None -> Ok (Program.make ~name tasks)
