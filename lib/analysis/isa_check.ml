module Diag = Promise_core.Diag
open Promise_isa

let word_rows = Promise_arch.Params.word_rows

let reads_x (t : Task.t) =
  Opcode.class1_reads_x t.class1 || Opcode.asd_reads_x t.class2.Opcode.asd

let writes_xreg (t : Task.t) =
  Opcode.equal_destination t.op_param.Op_param.des Opcode.Des_xreg
  && Task.uses_adc t

let check_task ?(span = Diag.No_span) t =
  match Task.validate t with
  | Ok _ -> []
  | Error d -> [ Diag.with_span d span ]

let check_tasks ~spans tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let span i = spans i in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iteri
    (fun i t ->
      (* per-Task legality first: the whole-program checks below read
         fields that only mean anything on a well-formed Task *)
      (match Task.validate t with
      | Ok _ -> ()
      | Error d -> add (Diag.with_span d (span i)));
      let p = t.Task.op_param in
      (* P-ISA-001: an X-REG store no later Task consumes is dead — the
         host preloads X-REG, so a write only exists to feed a
         downstream Class-1 add/subtract or Class-2 multiply. *)
      if writes_xreg t then begin
        let consumed = ref false in
        for j = i + 1 to n - 1 do
          if reads_x arr.(j) then consumed := true
        done;
        if not !consumed then
          add
            (Diag.errorf ~code:"P-ISA-001" ~span:(span i)
               "Task stores to X-REG but no later Task reads an X operand \
                (dead write)")
      end;
      (* P-ISA-002: the W window must fit the bank's word rows — the
         hardware wraps W_ADDR + iteration modulo the row count,
         silently aliasing the first rows. *)
      if not (Opcode.equal_class1 t.Task.class1 Opcode.C1_none) then begin
        let last = p.Op_param.w_addr + Task.iterations t - 1 in
        if p.Op_param.w_addr >= word_rows || last >= word_rows then
          add
            (Diag.errorf ~code:"P-ISA-002" ~span:(span i)
               "W window [%d, %d] exceeds the %d word rows of a bank \
                (addresses wrap and alias)"
               p.Op_param.w_addr last word_rows)
      end;
      (* P-ISA-003: analog values cannot cross a Task boundary (§3.1) —
         without a Class-3 ADC the aggregate is dropped at commit. *)
      if Opcode.class1_is_analog t.Task.class1 && not (Task.uses_adc t) then
        add
          (Diag.errorf ~code:"P-ISA-003" ~span:(span i)
             "analog value crosses the Task boundary without a Class-3 ADC \
              and is dropped");
      (* P-ISA-004: the TH stage emits once per ACC_NUM+1 samples; a
         trailing partial group never leaves the accumulator. *)
      if t.Task.class2.Opcode.avd && Task.uses_adc t then begin
        let group = p.Op_param.acc_num + 1 in
        if Task.iterations t mod group <> 0 then
          add
            (Diag.errorf ~code:"P-ISA-004" ~span:(span i)
               "%d iterations do not divide into ACC_NUM+1 = %d accumulation \
                groups; the tail never emits"
               (Task.iterations t) group)
      end;
      (* P-ISA-005: when X circulates, its period must match the
         accumulation group or the groups mix vector segments. *)
      if
        reads_x t
        && t.Task.class2.Opcode.avd
        && Task.uses_adc t
        && p.Op_param.x_prd <> p.Op_param.acc_num
      then
        add
          (Diag.errorf ~code:"P-ISA-005" ~span:(span i)
             "X_PRD = %d is out of phase with ACC_NUM = %d: accumulation \
              groups mix vector segments"
             p.Op_param.x_prd p.Op_param.acc_num))
    arr;
  (* P-ISA-006: a run of consecutive DES=acc Tasks forms one
     accumulation chain; its members must agree on the fields that
     shape the partial sums, and the chain must eventually drain. *)
  let is_acc i =
    Opcode.equal_destination arr.(i).Task.op_param.Op_param.des Opcode.Des_acc
  in
  let i = ref 0 in
  while !i < n do
    if is_acc !i then begin
      let s = !i in
      let e = ref s in
      while !e + 1 < n && is_acc (!e + 1) do
        incr e
      done;
      let head = arr.(s) in
      for j = s + 1 to !e do
        let t = arr.(j) in
        if
          t.Task.multi_bank <> head.Task.multi_bank
          || t.Task.op_param.Op_param.swing <> head.Task.op_param.Op_param.swing
          || t.Task.op_param.Op_param.acc_num
             <> head.Task.op_param.Op_param.acc_num
        then
          add
            (Diag.errorf ~code:"P-ISA-006" ~span:(span j)
               "inconsistent accumulator chain: MULTI_BANK/SWING/ACC_NUM \
                differ from the chain head (task %d)"
               s)
      done;
      if !e = n - 1 then
        add
          (Diag.errorf ~code:"P-ISA-006" ~span:(span !e)
             "accumulator chain never drains: the program ends with DES = acc");
      i := !e + 1
    end
    else incr i
  done;
  Diag.sort (List.rev !diags)

let check_program tasks = check_tasks ~spans:(fun i -> Diag.Task i) tasks

let check_program_located located =
  let lines = Array.of_list (List.map fst located) in
  check_tasks ~spans:(fun i -> Diag.Line lines.(i)) (List.map snd located)
