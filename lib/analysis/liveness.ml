module Diag = Promise_core.Diag
module Ssa = Promise_ir.Ssa
open Promise_isa

module IntSet = Set.Make (Int)

module SetLattice = struct
  type t = IntSet.t

  let bottom = IntSet.empty
  let equal = IntSet.equal
  let join = IntSet.union
end

module Solver = Dataflow.Make (SetLattice)

let vregs_of values =
  List.filter_map (function Ssa.Vreg v -> Some v | _ -> None) values

let terminator_uses = function
  | Ssa.Br _ -> []
  | Ssa.Cond_br { cond; _ } -> vregs_of [ cond ]
  | Ssa.Ret v -> vregs_of (Option.to_list v)

(* Non-phi operand uses of an instruction: phi incoming values are
   edge uses charged to the predecessor, not to the phi's own block. *)
let instr_uses = function
  | Ssa.Phi _ -> []
  | i -> vregs_of (Ssa.instr_operands i)

type ssa_liveness = {
  live_in : IntSet.t array;
  live_out : IntSet.t array;
}

(* Per block: [defs], upward-exposed [uses] (a use before any same-
   block def — with SSA's global instruction numbering, operand id <
   first_index + position suffices... not quite: the operand may be
   defined in an earlier block, so "not defined earlier in this
   block" is the test), and the per-successor-edge phi uses. *)
let block_summary (blocks : Ssa.block array) =
  let n = Array.length blocks in
  let defs = Array.make n IntSet.empty in
  let ue_uses = Array.make n IntSet.empty in
  Array.iteri
    (fun bi (b : Ssa.block) ->
      let defined = ref IntSet.empty in
      Array.iteri
        (fun k i ->
          List.iter
            (fun v ->
              if not (IntSet.mem v !defined) then
                ue_uses.(bi) <- IntSet.add v ue_uses.(bi))
            (instr_uses i);
          defined := IntSet.add (b.Ssa.first_index + k) !defined)
        b.Ssa.instrs;
      List.iter
        (fun v ->
          if not (IntSet.mem v !defined) then
            ue_uses.(bi) <- IntSet.add v ue_uses.(bi))
        (terminator_uses b.Ssa.terminator);
      defs.(bi) <- !defined)
    blocks;
  (defs, ue_uses)

(* phi_edge_uses.(p) — vregs consumed at the end of block [p] by phis
   in its successors. *)
let phi_edge_uses (blocks : Ssa.block array) =
  let n = Array.length blocks in
  let out = Array.make n IntSet.empty in
  let index = Hashtbl.create n in
  Array.iteri (fun i (b : Ssa.block) -> Hashtbl.replace index b.Ssa.label i) blocks;
  Array.iter
    (fun (b : Ssa.block) ->
      Array.iter
        (function
          | Ssa.Phi { incoming } ->
              List.iter
                (fun (label, v) ->
                  match (Hashtbl.find_opt index label, v) with
                  | Some p, Ssa.Vreg r -> out.(p) <- IntSet.add r out.(p)
                  | _ -> ())
                incoming
          | _ -> ())
        b.Ssa.instrs)
    blocks;
  out

let ssa_liveness (f : Ssa.func) =
  let graph, blocks = Dataflow.of_ssa f in
  let defs, ue_uses = block_summary blocks in
  let phi_uses = phi_edge_uses blocks in
  let solved =
    Solver.solve ~direction:Dataflow.Backward ~graph
      ~transfer:(fun bi out ->
        (* the phi edge use happens at the very end of this block,
           after its defs: it flows into live-in only if the value is
           defined elsewhere *)
        IntSet.union ue_uses.(bi)
          (IntSet.diff (IntSet.union out phi_uses.(bi)) defs.(bi)))
      ()
  in
  (* live_out as stored by the solver is the raw join of successor
     live-ins; add the phi edge uses so callers see the true
     end-of-block set. *)
  let live_out =
    Array.mapi (fun bi s -> IntSet.union s phi_uses.(bi)) solved.Solver.exit
  in
  { live_in = solved.Solver.entry; live_out }

let live_after (f : Ssa.func) =
  let _, blocks = Dataflow.of_ssa f in
  let { live_out; _ } = ssa_liveness f in
  let after : (int, IntSet.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun bi (b : Ssa.block) ->
      (* walk the block backward from its live-out *)
      let live = ref (IntSet.union live_out.(bi)
                        (IntSet.of_list (terminator_uses b.Ssa.terminator))) in
      for k = Array.length b.Ssa.instrs - 1 downto 0 do
        let id = b.Ssa.first_index + k in
        Hashtbl.replace after id !live;
        live := IntSet.remove id !live;
        live := IntSet.union !live (IntSet.of_list (instr_uses b.Ssa.instrs.(k)))
      done)
    blocks;
  fun id -> Option.value ~default:IntSet.empty (Hashtbl.find_opt after id)

(* [Store] writes memory and [Call] is an opaque library call; every
   other instruction only produces its vreg. *)
let is_pure = function Ssa.Store _ | Ssa.Call _ -> false | _ -> true

let check (f : Ssa.func) =
  let after = live_after f in
  let diags = ref [] in
  List.iter
    (fun (b : Ssa.block) ->
      Array.iteri
        (fun k i ->
          let id = b.Ssa.first_index + k in
          if is_pure i && not (IntSet.mem id (after id)) then
            diags :=
              Diag.warningf ~code:"P-DCE-001"
                ~span:(Diag.Instr { block = b.Ssa.label; vreg = id })
                "pure instruction %%%d is never used: dead code" id
              :: !diags)
        b.Ssa.instrs)
    f.Ssa.blocks;
  List.rev !diags

(* ---- Task-level X-REG lifetimes ---- *)

let reads_x (t : Task.t) =
  Opcode.class1_reads_x t.Task.class1
  || Opcode.asd_reads_x t.Task.class2.Opcode.asd

let writes_xreg (t : Task.t) =
  Opcode.equal_destination t.Task.op_param.Op_param.des Opcode.Des_xreg
  && Task.uses_adc t

module BoolLattice = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
end

module BoolSolver = Dataflow.Make (BoolLattice)

let check_program tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    (* Backward fact: "the X-REG staging slot is read downstream
       before the next store overwrites it". Within one Task the X
       reads happen before its own store commits, so a Task that both
       reads and writes still observes its predecessor's value. *)
    let solved =
      BoolSolver.solve ~direction:Dataflow.Backward
        ~graph:(Dataflow.of_sequence n)
        ~transfer:(fun i after ->
          let t = arr.(i) in
          if reads_x t then true
          else if writes_xreg t then false
          else after)
        ()
    in
    let diags = ref [] in
    Array.iteri
      (fun i t ->
        if writes_xreg t && not solved.BoolSolver.exit.(i) then begin
          (* P-ISA-001 owns the "no later reader at all" case *)
          let any_later_reader = ref false in
          for j = i + 1 to n - 1 do
            if reads_x arr.(j) then any_later_reader := true
          done;
          if !any_later_reader then
            diags :=
              Diag.errorf ~code:"P-DCE-002" ~span:(Diag.Task i)
                "X-REG store is overwritten by a later store before any Task \
                 reads an X operand (shadowed write)"
              :: !diags
        end)
      arr;
    List.rev !diags
  end
