(** Interval abstract interpretation of the 8-bit datapath (lint pass
    3 of 3).

    Walks the AbstractTask graph in topological order, bounding the
    value each node emits given the datapath semantics (normalized
    [[-1, 127/128]] operands, halved fused add/subtract, charge-share
    mean, ±1 ADC full scale, TH accumulation over ACC_NUM+1 = segments
    samples) and flags values that would saturate an 8-bit register
    destination.

    Diagnostic codes:
    - [P-OVF-001] (error) a node's emitted interval exceeds the 8-bit
      register range it is routed to — values clamp
    - [P-OVF-002] (warning) a node consumes the output of a saturated
      producer
    - [P-OVF-003] (error) the Sakr precision assignment is infeasible
      in the 8-bit datapath ({!check_stats})
    - [P-OVF-004] (error) a node's vector has no bank placement *)

type bounds = { lo : float; hi : float }

type node_report = {
  node : int;  (** graph node id *)
  name : string;
  emitted : bounds;  (** value interval seen by consumers *)
  quantized : bool;  (** destination is an 8-bit register (X-REG) *)
  saturates : bool;
}

val analyze :
  Promise_ir.Graph.t -> node_report list * Promise_core.Diag.t list
(** Per-node bounds (topological order) and the diagnostics. *)

val weight_bits : int
(** 7 — the datapath's fixed weight precision, as in
    [Promise_compiler.Precision.weight_bits]. *)

val min_bits : ea:float -> ew:float -> pm:float -> (int, string) result
(** Minimum activation bits meeting the Sakr bound at {!weight_bits}
    weight bits. Mirrors [Precision.min_activation_bits] (the compiler
    depends on this library, not vice versa); [test_lint] asserts the
    two agree. *)

val check_stats : ea:float -> ew:float -> pm:float -> Promise_core.Diag.t list
(** [P-OVF-003] when {!min_bits} fails or exceeds the 8-bit datapath. *)
