(** Liveness and dead-code analysis (the [P-DCE-*] pass), hosted on
    {!Dataflow}.

    Two levels, mirroring the two program representations the linter
    sees:

    - {b SSA}: classic backward liveness over the CFG. Phi uses are
      attributed to the {e end of the incoming predecessor} (the value
      must be live across that edge, not at the phi itself), which is
      what makes loop-carried induction variables come out right. A
      pure instruction (everything except [Store] and [Call]) whose
      result is live nowhere is dead code — [P-DCE-001] (warning: the
      value is simply never computed into anything observable).

    - {b Task stream}: a backward pass over the straight-line program
      generalizing the [P-ISA-001] dead-store check to cross-Task
      X-REG lifetimes. Every ADC-routed [DES = xreg] store lands on
      the same X-REG slot (the runtime's staging register), so a
      store followed by another store before any Task reads an X
      operand can never be observed — [P-DCE-002] (error). The plain
      "no later reader at all" case stays [P-ISA-001]; this pass only
      fires when a later reader exists but an intervening store
      shadows the value, so the two codes never double-report. *)

module IntSet : Set.S with type elt = int

type ssa_liveness = {
  live_in : IntSet.t array;  (** per block, declaration order *)
  live_out : IntSet.t array;
}

val ssa_liveness : Promise_ir.Ssa.func -> ssa_liveness
(** Solve backward liveness over the function's CFG. *)

val live_after : Promise_ir.Ssa.func -> (int -> IntSet.t)
(** [live_after f] — per global instruction index, the set of vregs
    live immediately after that instruction (block terminator uses and
    successor-phi edge uses included). *)

val check : Promise_ir.Ssa.func -> Promise_core.Diag.t list
(** [P-DCE-001] for every dead pure instruction. *)

val check_program : Promise_isa.Task.t list -> Promise_core.Diag.t list
(** [P-DCE-002] for every X-REG store shadowed by a later store before
    any X read. *)
