module Diag = Promise_core.Diag

type report = { target : string; diags : Diag.t list }

let make ~target diags = { target; diags = Diag.sort diags }

let lint_pasm ~target src =
  match Promise_isa.Asm.parse_program_located src with
  | Error d -> make ~target [ d ]
  | Ok located -> make ~target (Isa_check.check_program_located located)

let errors r = Diag.count_errors r.diags
let warnings r = Diag.count_warnings r.diags
let total_errors rs = List.fold_left (fun n r -> n + errors r) 0 rs
let total_warnings rs = List.fold_left (fun n r -> n + warnings r) 0 rs

(* Exit-code contract: 0 = clean (warnings allowed), 1 = at least one
   error-severity diagnostic. Usage/IO failures are the CLI's 2. *)
let exit_code rs = if total_errors rs > 0 then 1 else 0

let summary rs =
  Printf.sprintf "%d error(s), %d warning(s) in %d target(s)" (total_errors rs)
    (total_warnings rs) (List.length rs)

let render_text r =
  let buf = Buffer.create 256 in
  if r.diags = [] then Buffer.add_string buf (r.target ^ ": clean\n")
  else
    List.iter
      (fun d ->
        Buffer.add_string buf
          (Printf.sprintf "%s: %s\n" r.target (Diag.to_string d)))
      r.diags;
  Buffer.contents buf

let render_json rs =
  let target r =
    Printf.sprintf
      {|{"target":"%s","errors":%d,"warnings":%d,"diagnostics":%s}|}
      (Diag.json_escape r.target) (errors r) (warnings r)
      (Diag.list_to_json r.diags)
  in
  Printf.sprintf {|{"summary":{"errors":%d,"warnings":%d},"targets":[%s]}|}
    (total_errors rs) (total_warnings rs)
    (String.concat "," (List.map target rs))
