module Diag = Promise_core.Diag

type report = { target : string; diags : Diag.t list }

(* Structurally identical diagnostics collapse: the passes overlap on
   purpose (e.g. a dwell hazard seen by both the benchmark and file
   paths of one run), and byte-reproducible output for cram and
   baseline diffs demands one copy in one stable position. Sort first
   (span, then code, then severity), then drop adjacent duplicates. *)
let dedupe ds =
  let rec go = function
    | a :: b :: rest when a = b -> go (b :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go (Diag.sort ds)

let make ~target diags = { target; diags = dedupe diags }

let lint_pasm ~target src =
  match Promise_isa.Asm.parse_program_located src with
  | Error d -> make ~target [ d ]
  | Ok located -> make ~target (Isa_check.check_program_located located)

let errors r = Diag.count_errors r.diags
let warnings r = Diag.count_warnings r.diags
let total_errors rs = List.fold_left (fun n r -> n + errors r) 0 rs
let total_warnings rs = List.fold_left (fun n r -> n + warnings r) 0 rs

(* Exit-code contract: 0 = clean (warnings allowed), 1 = at least one
   error-severity diagnostic, or more warnings than --max-warnings
   permits. Usage/IO failures are the CLI's 2. *)
let exit_code ?max_warnings rs =
  if total_errors rs > 0 then 1
  else
    match max_warnings with
    | Some n when total_warnings rs > n -> 1
    | _ -> 0

let summary rs =
  Printf.sprintf "%d error(s), %d warning(s) in %d target(s)" (total_errors rs)
    (total_warnings rs) (List.length rs)

(* ---- Deny promotion ---- *)

let prefixed ~prefix code =
  let np = String.length prefix in
  String.length code >= np && String.sub code 0 np = prefix

let apply_deny ~deny rs =
  if deny = [] then rs
  else
    List.map
      (fun r ->
        {
          r with
          diags =
            List.map
              (fun d ->
                if
                  Diag.severity d = Diag.Warning
                  && List.exists (fun p -> prefixed ~prefix:p (Diag.code d)) deny
                then { d with Diag.severity = Diag.Error }
                else d)
              r.diags;
        })
      rs

(* ---- Fingerprints and baselines ---- *)

(* Salted with the target so the same diagnostic in two files keeps
   two identities — a baseline entry suppresses exactly one spot. *)
let fingerprint r d = Diag.fingerprint ~salt:r.target d

let baseline_of_reports rs =
  let fps =
    List.sort_uniq compare
      (List.concat_map (fun r -> List.map (fingerprint r) r.diags) rs)
  in
  Printf.sprintf {|{"version":1,"fingerprints":[%s]}|}
    (String.concat "," (List.map (fun f -> "\"" ^ f ^ "\"") fps))

(* Minimal parser for exactly the object [baseline_of_reports] writes:
   scan the "fingerprints" array for its quoted strings. Tolerates
   whitespace; rejects anything without the key. *)
let parse_baseline src =
  match
    let re_key = "\"fingerprints\"" in
    let rec find_sub i =
      if i + String.length re_key > String.length src then None
      else if String.sub src i (String.length re_key) = re_key then Some i
      else find_sub (i + 1)
    in
    find_sub 0
  with
  | None -> Error "baseline file has no \"fingerprints\" key"
  | Some k -> (
      match String.index_from_opt src k '[' with
      | None -> Error "baseline file has no fingerprint array"
      | Some open_b -> (
          match String.index_from_opt src open_b ']' with
          | None -> Error "baseline file has an unterminated fingerprint array"
          | Some close_b ->
              let body = String.sub src (open_b + 1) (close_b - open_b - 1) in
              let parts = String.split_on_char '"' body in
              (* quoted strings are the even-to-odd segments *)
              let rec strings = function
                | _ :: s :: rest -> s :: strings rest
                | _ -> []
              in
              let fps =
                List.filter
                  (fun s ->
                    String.length s > 0
                    && String.for_all
                         (function
                           | '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                         s)
                  (strings parts)
              in
              Ok fps))

(* [apply_baseline] — drop every diagnostic whose fingerprint is in
   the baseline; returns the filtered reports and the suppressed
   count. Exactly fingerprinted: a new diagnostic at a new span or
   with a new message skeleton does not match. *)
let apply_baseline ~baseline rs =
  let suppressed = ref 0 in
  let rs' =
    List.map
      (fun r ->
        {
          r with
          diags =
            List.filter
              (fun d ->
                let keep = not (List.mem (fingerprint r d) baseline) in
                if not keep then incr suppressed;
                keep)
              r.diags;
        })
      rs
  in
  (rs', !suppressed)

(* ---- Renderers ---- *)

let render_text r =
  let buf = Buffer.create 256 in
  if r.diags = [] then Buffer.add_string buf (r.target ^ ": clean\n")
  else
    List.iter
      (fun d ->
        Buffer.add_string buf
          (Printf.sprintf "%s: %s\n" r.target (Diag.to_string d)))
      r.diags;
  Buffer.contents buf

let render_json rs =
  let target r =
    Printf.sprintf
      {|{"target":"%s","errors":%d,"warnings":%d,"diagnostics":%s}|}
      (Diag.json_escape r.target) (errors r) (warnings r)
      (Diag.list_to_json r.diags)
  in
  Printf.sprintf {|{"summary":{"errors":%d,"warnings":%d},"targets":[%s]}|}
    (total_errors rs) (total_warnings rs)
    (String.concat "," (List.map target rs))

(* SARIF 2.1.0, the minimal subset CI code-scanning ingests: one run,
   one result per diagnostic, rule ids collected across the report,
   fingerprints under partialFingerprints so "new since baseline"
   logic can key on the same identity promise-lint does. *)
let sarif_level d =
  match Diag.severity d with
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Info -> "note"

let render_sarif ?(tool_version = "1.0.0") rs =
  let rules =
    List.sort_uniq compare
      (List.concat_map (fun r -> List.map Diag.code r.diags) rs)
  in
  let rule_json c = Printf.sprintf {|{"id":"%s"}|} (Diag.json_escape c) in
  let result r d =
    let region =
      match Diag.span d with
      | Diag.Line n -> Printf.sprintf {|,"region":{"startLine":%d}|} n
      | _ -> ""
    in
    let logical =
      match Diag.span_to_string (Diag.span d) with
      | "" -> ""
      | s ->
          Printf.sprintf {|,"logicalLocations":[{"fullyQualifiedName":"%s"}]|}
            (Diag.json_escape s)
    in
    Printf.sprintf
      {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"}%s}%s}],"partialFingerprints":{"promiseLint/v1":"%s"}}|}
      (Diag.json_escape (Diag.code d))
      (sarif_level d)
      (Diag.json_escape (Diag.message d))
      (Diag.json_escape r.target)
      region logical (fingerprint r d)
  in
  let results =
    List.concat_map (fun r -> List.map (result r) r.diags) rs
  in
  Printf.sprintf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"promise-lint","version":"%s","rules":[%s]}},"results":[%s]}]}|}
    (Diag.json_escape tool_version)
    (String.concat "," (List.map rule_json rules))
    (String.concat "," results)
