module Diag = Promise_core.Diag
module Ssa = Promise_ir.Ssa
module IntSet = Liveness.IntSet

let xreg_depth = Promise_arch.Params.xreg_depth

(* Vector-typed vregs: resolved from def instructions. Two passes so a
   loop-carried phi whose only same-index-order incoming is defined
   later (the back edge) still resolves. *)
let vector_vregs (f : Ssa.func) =
  let vecs = ref IntSet.empty in
  let param_is_vector name =
    match Ssa.param_ty f name with
    | Some (Ssa.Vector _) | Some (Ssa.Matrix _) -> true
    | _ -> false
  in
  let value_is_vector v =
    match v with
    | Ssa.Vreg r -> IntSet.mem r !vecs
    | Ssa.Arg a -> param_is_vector a
    | _ -> false
  in
  let instr_is_vector = function
    | Ssa.Getindex _ -> true (* a matrix row *)
    | Ssa.Vec_binop _ | Ssa.Vec_unop _ -> true
    | Ssa.Phi { incoming } -> List.exists (fun (_, v) -> value_is_vector v) incoming
    | _ -> false
  in
  let sweep () =
    List.iter
      (fun (b : Ssa.block) ->
        Array.iteri
          (fun k i ->
            if instr_is_vector i then
              vecs := IntSet.add (b.Ssa.first_index + k) !vecs)
          b.Ssa.instrs)
      f.Ssa.blocks
  in
  sweep ();
  sweep ();
  !vecs

let max_pressure (f : Ssa.func) =
  let vecs = vector_vregs f in
  let after = Liveness.live_after f in
  let peak = ref 0 in
  let count s = IntSet.cardinal (IntSet.inter s vecs) in
  List.iter
    (fun (b : Ssa.block) ->
      Array.iteri
        (fun k _ ->
          peak := max !peak (count (after (b.Ssa.first_index + k))))
        b.Ssa.instrs)
    f.Ssa.blocks;
  !peak

let check_function f =
  let p = max_pressure f in
  if p > xreg_depth then
    [
      Diag.errorf ~code:"P-REG-001"
        "%d vector values are live simultaneously but the X-REG file holds \
         %d: the kernel cannot be staged without spilling"
        p xreg_depth;
    ]
  else []

(* ---- Allocator cross-check ---- *)

type alloc = {
  index : int;
  level : int;
  first_bank : int;
  banks : int;
  start_cycle : int;
  finish_cycle : int;
}

let check_allocation allocs =
  let arr = Array.of_list allocs in
  let n = Array.length arr in
  let diags = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      let time_overlap =
        a.start_cycle < b.finish_cycle && b.start_cycle < a.finish_cycle
      in
      let bank_overlap =
        a.first_bank < b.first_bank + b.banks
        && b.first_bank < a.first_bank + a.banks
      in
      if time_overlap && bank_overlap then
        diags :=
          Diag.errorf ~code:"P-REG-002" ~span:(Diag.Task b.index)
            "allocator overlap: tasks %d and %d share banks [%d, %d] ∩ [%d, \
             %d] during cycles [%d, %d) ∩ [%d, %d)"
            a.index b.index a.first_bank
            (a.first_bank + a.banks - 1)
            b.first_bank
            (b.first_bank + b.banks - 1)
            a.start_cycle a.finish_cycle b.start_cycle b.finish_cycle
          :: !diags
    done
  done;
  List.rev !diags
