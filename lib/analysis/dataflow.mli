(** Generic worklist fixpoint solver — the shared engine of the lint
    passes (liveness, X-REG pressure, the interval re-host).

    A client supplies a join-semilattice of facts, a flow graph over
    integer node ids (SSA CFG blocks, AbstractTask graph nodes, or
    Task-stream indices), a direction and a monotone transfer
    function; the solver iterates to the least fixpoint and returns
    the fact at each node's entry and exit.

    Conventions (independent of direction):
    - [entry.(i)] is the fact holding {e before} node [i] in program
      order, [exit.(i)] the fact holding {e after} it.
    - Forward: [entry = join over predecessors' exit] (or [init] at
      nodes with no predecessor), [exit = transfer entry].
    - Backward: [exit = join over successors' entry] (or [init] at
      nodes with no successor), [entry = transfer exit].

    The lattice must have finite height (or the graph must be acyclic,
    as the AbstractTask DAG is for the interval environment lattice);
    a defensive iteration cap turns a diverging analysis into
    [Invalid_argument] instead of a hang. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

(** A flow graph over node ids [0 .. n-1]. *)
type graph = { n : int; succs : int -> int list; preds : int -> int list }

val of_sequence : int -> graph
(** Straight-line graph of [n] nodes ([i -> i+1]) — the Task-stream
    shape used by the Task-level passes. *)

val of_ssa : Promise_ir.Ssa.func -> graph * Promise_ir.Ssa.block array
(** CFG over the function's blocks (indexed in declaration order,
    entry first), with the block array for indexed access. Branches to
    unknown labels are ignored (the SSA validator reports those). *)

val of_task_graph : Promise_ir.Graph.t -> graph
(** The AbstractTask DAG, ports dropped. *)

module Make (L : LATTICE) : sig
  type result = { entry : L.t array; exit : L.t array }

  val solve :
    ?init:(int -> L.t) ->
    direction:direction ->
    graph:graph ->
    transfer:(int -> L.t -> L.t) ->
    unit ->
    result
  (** Least fixpoint by worklist iteration. [init] seeds the boundary
      fact at entry nodes (forward) or exit nodes (backward); default
      [L.bottom]. [transfer i fact] must be monotone in [fact]. *)
end
