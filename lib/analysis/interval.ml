module Diag = Promise_core.Diag
module At = Promise_ir.Abstract_task
module Graph = Promise_ir.Graph
module Layout = Promise_arch.Layout

type bounds = { lo : float; hi : float }

(* Largest positive code of the signed 8-bit datapath: 127/128. *)
let code_max = 127.0 /. 128.0
let full_range = { lo = -1.0; hi = code_max }

let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }
let scale a k =
  if k >= 0.0 then { lo = a.lo *. k; hi = a.hi *. k }
  else { lo = a.hi *. k; hi = a.lo *. k }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  {
    lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
  }

let abs_bounds a =
  if a.lo >= 0.0 then a
  else if a.hi <= 0.0 then { lo = -.a.hi; hi = -.a.lo }
  else { lo = 0.0; hi = Float.max (-.a.lo) a.hi }

let square a =
  let b = abs_bounds a in
  { lo = b.lo *. b.lo; hi = b.hi *. b.hi }

let clamp a ~lo ~hi = { lo = Float.max lo a.lo; hi = Float.min hi a.hi }

type node_report = {
  node : int;
  name : string;
  emitted : bounds;
  quantized : bool;
  saturates : bool;
}

(* ---- The abstract state, re-hosted on Dataflow ----

   The fact flowing forward through the AbstractTask DAG is an
   environment: for every upstream node, the interval its consumers
   see plus whether it saturated. Join is pointwise interval hull /
   boolean or — a node reachable along two paths (a diamond) gets the
   union of what each path proved, which on this DAG is always the
   same single-assignment entry, so the hull is exact. *)

type fact = { bounds : bounds; sat : bool }

module Env = struct
  (* sorted association list keyed by node id: cheap structural
     equality, deterministic join *)
  type t = (int * fact) list

  let bottom = []

  let equal (a : t) (b : t) = a = b

  let rec join a b =
    match (a, b) with
    | [], e | e, [] -> e
    | (ka, fa) :: ra, (kb, fb) :: rb ->
        if ka < kb then (ka, fa) :: join ra b
        else if kb < ka then (kb, fb) :: join a rb
        else
          let hull =
            {
              bounds =
                {
                  lo = Float.min fa.bounds.lo fb.bounds.lo;
                  hi = Float.max fa.bounds.hi fb.bounds.hi;
                };
              sat = fa.sat || fb.sat;
            }
          in
          (ka, hull) :: join ra rb

  let find id (e : t) = List.assoc_opt id e

  let bind id f (e : t) =
    let rec go = function
      | [] -> [ (id, f) ]
      | (k, _) :: r when k = id -> (id, f) :: r
      | (k, v) :: r when k < id -> (k, v) :: go r
      | r -> (id, f) :: r
    in
    go e
end

module Solver = Dataflow.Make (Env)

(* [step g id env] — the single-node datapath semantics: the value
   node [id] emits given the environment of producer facts, plus the
   saturation verdict. This is the one place the abstract semantics
   live; both the fixpoint transfer and the diagnostic emission call
   it, which is what keeps the two in lockstep. *)
type verdict = {
  emitted_v : bounds;
  quantized_v : bool;
  saturates_v : bool;
  post : bounds;
  placed : (unit, string) result;
}

let step g id (env : Env.t) =
  let at = Graph.task g id in
  match
    Layout.plan ~vector_len:at.At.vector_len ~rows:at.At.loop_iterations ()
  with
  | Error msg ->
      {
        emitted_v = full_range;
        quantized_v = false;
        saturates_v = false;
        post = full_range;
        placed = Error msg;
      }
  | Ok plan ->
      let segments = plan.Layout.segments in
      let preds = Graph.predecessors g id in
      let x =
        match
          List.find_opt
            (fun (_, port) -> Graph.equal_port port Graph.X_input)
            preds
        with
        | Some (p, _) -> (
            (* the producer's value reaches X through an 8-bit
               register surface *)
            match Env.find p env with
            | Some f -> clamp f.bounds ~lo:(-1.0) ~hi:code_max
            | None -> full_range)
        | None -> full_range (* host-preloaded X-REG codes *)
      in
      let w = full_range in
      let elem =
        match at.At.vec_op with
        | At.Vo_none -> w
        | At.Vo_add -> scale (add w x) 0.5
        | At.Vo_sub -> scale (sub w x) 0.5
        | At.Vo_mul_signed -> mul w x
        | At.Vo_mul_unsigned -> mul w (abs_bounds x)
      in
      let shaped =
        match at.At.red_op with
        | At.Ro_sum -> elem
        | At.Ro_sum_abs -> abs_bounds elem
        | At.Ro_sum_square -> square elem
        | At.Ro_sum_compare -> { lo = 0.0; hi = 1.0 }
      in
      (* Charge-sharing is a mean over lanes (interval-preserving);
         the ADC clamps each sample to ±1 full scale. *)
      let sample = clamp shaped ~lo:(-1.0) ~hi:1.0 in
      (* The TH stage accumulates ACC_NUM+1 = segments samples per
         emitted value. *)
      let acc = scale sample (float_of_int segments) in
      let post =
        match at.At.digital_op with
        | At.Do_none -> acc
        | At.Do_mean -> scale acc (1.0 /. float_of_int segments)
        | At.Do_sigmoid -> { lo = 0.0; hi = 1.0 }
        | At.Do_relu -> { lo = 0.0; hi = Float.max 0.0 acc.hi }
        | At.Do_threshold -> { lo = 0.0; hi = 1.0 }
        | At.Do_min | At.Do_max -> acc
      in
      let terminal = Graph.successors g id = [] in
      (* Mirror of Lower.destination_of: only intermediate
         sigmoid/relu activations land in the 8-bit X-REG; terminal
         results go to the (host-float) output buffer. *)
      let quantized =
        match at.At.digital_op with
        | At.Do_sigmoid | At.Do_relu -> not terminal
        | _ -> false
      in
      let saturates = quantized && (post.lo < -1.0 || post.hi > 1.0) in
      let out = if quantized then clamp post ~lo:(-1.0) ~hi:code_max else post in
      {
        emitted_v = out;
        quantized_v = quantized;
        saturates_v = saturates;
        post;
        placed = Ok ();
      }

let analyze g =
  (* Phase 1: solve the environment fixpoint over the DAG. *)
  let flow = Dataflow.of_task_graph g in
  let solved =
    Solver.solve ~direction:Dataflow.Forward ~graph:flow
      ~transfer:(fun id env ->
        let v = step g id env in
        Env.bind id { bounds = v.emitted_v; sat = v.saturates_v } env)
      ()
  in
  (* Phase 2: replay the node semantics over the solved facts in
     topological order to emit reports and diagnostics — same values,
     same order, same messages as the single-walk original. *)
  let diags = ref [] in
  let add_diag d = diags := d :: !diags in
  let reports = ref [] in
  List.iter
    (fun id ->
      let at = Graph.task g id in
      let span = Diag.Node id in
      let env = solved.Solver.entry.(id) in
      let v = step g id env in
      match v.placed with
      | Error msg ->
          add_diag
            (Diag.errorf ~code:"P-OVF-004" ~span
               "task %S has no bank placement: %s" at.At.name msg)
      | Ok () ->
          (* P-OVF-002: inheriting a clamped (saturated) operand *)
          List.iter
            (fun (p, _) ->
              match Env.find p env with
              | Some { sat = true; _ } ->
                  add_diag
                    (Diag.warningf ~code:"P-OVF-002" ~span
                       "task %S reads the saturated output of task %d"
                       at.At.name p)
              | _ -> ())
            (Graph.predecessors g id);
          if v.saturates_v then
            add_diag
              (Diag.errorf ~code:"P-OVF-001" ~span
                 "task %S emits [%.3f, %.3f] into an 8-bit register that \
                  holds [-1, %.3f]: values saturate"
                 at.At.name v.post.lo v.post.hi code_max);
          reports :=
            {
              node = id;
              name = at.At.name;
              emitted = v.emitted_v;
              quantized = v.quantized_v;
              saturates = v.saturates_v;
            }
            :: !reports)
    (Graph.topological_order g);
  (List.rev !reports, Diag.sort (List.rev !diags))

(* ---- Sakr-style precision feasibility (paper §4.3) ----

   Mirrors Promise_compiler.Precision.min_activation_bits at the fixed
   weight precision of the 8-bit datapath; test_lint cross-checks the
   two implementations stay equal. The dependency points this way
   (compiler depends on analysis), hence the re-derivation. *)

let weight_bits = 7
let delta ~bits = 2.0 ** float_of_int (-(bits - 1))

let min_bits ~ea ~ew ~pm =
  if pm <= 0.0 then Error "mismatch probability must be positive"
  else
    let dw = delta ~bits:weight_bits in
    let weight_term = dw *. dw *. ew in
    if weight_term >= pm then
      Error
        (Printf.sprintf
           "weight quantization alone (%.4g) exceeds the p_m budget %.4g"
           weight_term pm)
    else
      let rec search ba =
        if ba > 16 then Error "activation precision above 16 bits required"
        else
          let da = delta ~bits:ba in
          if (da *. da *. ea) +. weight_term <= pm then Ok ba
          else search (ba + 1)
      in
      search 1

let check_stats ~ea ~ew ~pm =
  match min_bits ~ea ~ew ~pm with
  | Error msg ->
      [
        Diag.errorf ~code:"P-OVF-003"
          "precision assignment infeasible at p_m = %.4g: %s" pm msg;
      ]
  | Ok ba when ba > 8 ->
      [
        Diag.errorf ~code:"P-OVF-003"
          "meeting p_m = %.4g needs %d activation bits; the PROMISE datapath \
           is 8-bit"
          pm ba;
      ]
  | Ok _ -> []
