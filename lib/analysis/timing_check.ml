module Diag = Promise_core.Diag
module Timing = Promise_arch.Timing
module Scheduler = Promise_arch.Scheduler
module Params = Promise_arch.Params
module Adc = Promise_analog.Adc
module Leakage = Promise_analog.Leakage
open Promise_isa

(* The precision envelope: a held sample may droop by at most 3 ADC
   LSBs of full scale before digitization — past that, the energy the
   model charges for the sample (Table 3) bought fewer effective bits
   than the 8-bit datapath assumes. *)
let droop_tolerance = 3.0 *. Adc.lsb

let leakage_budget_ns ?(leakage_mult = 1.0) () =
  let rate = Leakage.capacitor_rate_per_ns *. leakage_mult in
  (* droop_factor ns = exp(-rate·ns); lose at most [droop_tolerance]:
     exp(-rate·ns) >= 1 - tol  ⇔  ns <= -ln(1 - tol)/rate *)
  -.Float.log (1.0 -. droop_tolerance) /. rate

(* Worst per-conversion wait for a free ADC unit, from the
   discrete-event schedule: the gap between a conversion's request
   (the previous stage's finish) and its actual start. *)
let worst_adc_stall ~adc_units task =
  let s = Scheduler.run ~ideal_adc:false ~adc_units task in
  let request : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let worst = ref 0 in
  List.iter
    (fun (e : Scheduler.event) ->
      match e.Scheduler.stage with
      | "S1" | "S2" -> Hashtbl.replace request e.Scheduler.iteration e.finish
      | "ADC" ->
          let req =
            Option.value ~default:e.Scheduler.start
              (Hashtbl.find_opt request e.Scheduler.iteration)
          in
          worst := max !worst (e.Scheduler.start - req)
      | _ -> ())
    s.Scheduler.events;
  !worst

let worst_dwell_cycles ?(adc_units = Adc.units_per_bank) (t : Task.t) =
  let base = t.Task.op_param.Op_param.acc_num * Timing.task_tp t in
  (* At the full complement the paper's throughput model treats the
     ADC as internally pipelined (stall-free); only a degraded bank
     adds conversion wait to the dwell. *)
  let stall =
    if adc_units < Adc.units_per_bank then worst_adc_stall ~adc_units t else 0
  in
  base + stall

let accumulates (t : Task.t) = t.Task.class2.Opcode.avd && Task.uses_adc t

let check_dwell ~leakage_mult ~adc_units i t =
  if not (accumulates t) then []
  else
    let dwell = worst_dwell_cycles ~adc_units t in
    let dwell_ns = float_of_int dwell *. Params.cycle_ns in
    let budget = leakage_budget_ns ~leakage_mult () in
    if dwell_ns > budget then
      [
        Diag.errorf ~code:"P-TIM-001" ~span:(Diag.Task i)
          "analog accumulation dwells %d cycles (%.1f ns) before its ADC \
           read but the leakage budget is %.1f ns (%.1f%% full-scale droop): \
           the held samples decay below 8-bit precision"
          dwell dwell_ns budget
          (droop_tolerance *. 100.0);
      ]
    else []

(* DES=acc chains: maximal runs of consecutive accumulate-destination
   tasks plus the draining task that follows (the drain reads the
   shared TH accumulator, so it is a member of the timing group). *)
let acc_chains tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let des_acc i =
    Opcode.equal_destination arr.(i).Task.op_param.Op_param.des Opcode.Des_acc
  in
  let chains = ref [] in
  let i = ref 0 in
  while !i < n do
    if des_acc !i then begin
      let start = !i in
      while !i < n && des_acc !i do
        incr i
      done;
      let stop = if !i < n then !i else !i - 1 in
      chains := (start, stop) :: !chains
    end
    else incr i
  done;
  List.rev !chains

let check_chains ~batch tasks =
  let arr = Array.of_list tasks in
  List.concat_map
    (fun (start, stop) ->
      let head = arr.(start) in
      let tp0 = Timing.task_tp head and it0 = Task.iterations head in
      let rec scan i =
        if i > stop then []
        else
          let t = arr.(i) in
          let tp = Timing.task_tp t and it = Task.iterations t in
          if tp <> tp0 || it <> it0 then
            let drift =
              (batch - 1) * abs ((it * tp) - (it0 * tp0))
            in
            Diag.errorf ~code:"P-TIM-002" ~span:(Diag.Task i)
              "accumulation-chain member runs at %d iterations × TP %d but \
               the chain head at %d × %d: after %d pipelined decisions the \
               partial sums drift %d cycles apart and the drain mixes \
               decisions"
              it tp it0 tp0 batch drift
            :: scan (i + 1)
          else scan (i + 1)
      in
      scan (start + 1))
    (acc_chains tasks)

let check_backlog ~adc_units i t =
  if adc_units >= Adc.units_per_bank || not (Task.uses_adc t) then []
  else
    let tp = Timing.task_tp t in
    let group = if t.Task.class2.Opcode.avd then t.Task.op_param.Op_param.acc_num + 1 else 1 in
    let cadence = group * tp in
    let d3 = Timing.class3_latency t.Task.class3 in
    if adc_units * cadence < d3 then
      [
        Diag.warningf ~code:"P-TIM-003" ~span:(Diag.Task i)
          "with %d of %d ADC units alive, conversions arrive every %d cycles \
           but %d units cover only one per %d: the pipeline stalls and held \
           samples droop"
          adc_units Adc.units_per_bank cadence adc_units
          ((d3 + adc_units - 1) / adc_units);
      ]
    else []

let check_program ?(leakage_mult = 1.0) ?(adc_units = Adc.units_per_bank)
    ?(batch = 2) tasks =
  if leakage_mult <= 0.0 then
    invalid_arg "Timing_check.check_program: leakage_mult must be > 0";
  if adc_units < 1 then
    invalid_arg "Timing_check.check_program: adc_units must be >= 1";
  if batch < 2 then
    invalid_arg "Timing_check.check_program: batch must be >= 2";
  let per_task =
    List.concat
      (List.mapi
         (fun i t ->
           check_dwell ~leakage_mult ~adc_units i t
           @ check_backlog ~adc_units i t)
         tasks)
  in
  per_task @ check_chains ~batch tasks
