(** X-REG pressure analysis and allocator cross-check (the [P-REG-*]
    pass).

    The machine stages vector operands in an X-REG file of
    [Promise_arch.Params.xreg_depth] entries. At the SSA level every
    simultaneously-live vector value needs its own entry, so the max
    number of vector-typed vregs live at any program point — computed
    from {!Liveness} interference — is the kernel's register
    pressure. Pressure above the X-REG depth cannot be staged without
    spilling the linter does not model: [P-REG-001] (error).

    The second check guards the other end of the toolchain: a bank
    {!Promise_compiler.Allocator} assignment in which two
    simultaneously-live (cycle-overlapping) task placements share a
    bank would silently corrupt both weights. {!check_allocation}
    re-verifies any plan from first principles — [P-REG-002] (error) —
    and the allocator runs it fail-closed on every plan it returns.
    The [alloc] record mirrors [Allocator.assignment] without the
    [Task.t] payload so the dependency keeps pointing compiler →
    analysis. *)

val max_pressure : Promise_ir.Ssa.func -> int
(** Peak number of simultaneously-live vector-typed vregs across every
    program point. *)

val check_function : Promise_ir.Ssa.func -> Promise_core.Diag.t list
(** [P-REG-001] when {!max_pressure} exceeds the X-REG depth. *)

type alloc = {
  index : int;  (** task position, for the diagnostic span *)
  level : int;
  first_bank : int;
  banks : int;
  start_cycle : int;
  finish_cycle : int;
}

val check_allocation : alloc list -> Promise_core.Diag.t list
(** [P-REG-002] for every pair of assignments whose cycle intervals
    (half-open) and bank ranges both intersect. *)
