(** Analog-dwell timing hazards (the [P-TIM-*] pass).

    Analog state is perishable: a sample held on the aSD stage
    capacitor droops at {!Promise_analog.Leakage.capacitor_rate_per_ns}
    toward zero while it waits for digitization. This pass statically
    bounds, from the {!Promise_arch.Scheduler} stage delays, how many
    cycles an analog accumulation dwells before its ADC read, and
    compares the droop over that dwell against a leakage budget
    derived from the energy model's precision envelope: the held value
    may lose at most {!droop_tolerance} (3 ADC LSBs) of full scale —
    beyond that the Table-3 energy spent on the sample bought fewer
    effective bits than the datapath's 8.

    Codes:
    - [P-TIM-001] (error) — worst-case accumulation dwell
      ([ACC_NUM × TP] cycles, plus the worst per-conversion ADC stall
      when the bank runs degraded with [adc_units] below its
      eight-unit complement, all scaled by [leakage_mult]) exceeds the
      leakage budget.
    - [P-TIM-002] (error) — a [DES = acc] accumulation chain whose
      members disagree on pipeline cadence ([TP] or iteration count):
      under the PR-7 batched pipeline a new decision issues every
      [iterations × TP] cycles per member, so mismatched members drift
      [(batch−1) × Δ] cycles apart and the drain mixes partial sums
      from different decisions.
    - [P-TIM-003] (warning) — with a degraded ADC complement, the
      conversion request cadence outruns the surviving units
      ([units × group × TP < 138]): dwell grows with every group and
      the pipeline stalls. Only evaluated when [adc_units] is below
      the full complement — at eight units the paper's throughput
      model treats the ADC as fully pipelined. *)

val droop_tolerance : float
(** Tolerated full-scale droop before digitization: 3 ×
    {!Promise_analog.Adc.lsb}. *)

val leakage_budget_ns : ?leakage_mult:float -> unit -> float
(** Dwell budget: the time for an exponential droop at
    [capacitor_rate × leakage_mult] to lose {!droop_tolerance} of the
    held value. ≈ 47 ns at the nominal rate. *)

val worst_dwell_cycles : ?adc_units:int -> Promise_isa.Task.t -> int
(** [ACC_NUM × TP] plus, when [adc_units] is below the full
    complement, the worst per-conversion ADC stall observed by the
    discrete-event scheduler. *)

val check_program :
  ?leakage_mult:float ->
  ?adc_units:int ->
  ?batch:int ->
  Promise_isa.Task.t list ->
  Promise_core.Diag.t list
(** All three checks over a Task stream. [leakage_mult] scales the
    droop rate (a {!Promise_arch.Faults} excess-leakage profile);
    [adc_units] models dead ADC units; [batch] (default 2, must be
    ≥ 2) sets the drift horizon quoted by [P-TIM-002]. *)
