(** SSA validator (lint pass 2 of 3).

    Validates a {!Promise_ir.Ssa.func} beyond the structural
    [Ssa.verify] the builder already runs: single assignment,
    def-dominates-use over the CFG, terminator/phi well-formedness and
    permissive per-instruction type checking. Run on every frontend
    output so pattern-matcher bugs surface as diagnostics instead of
    downstream miscompiles.

    Diagnostic codes:
    - [P-SSA-001] duplicate block label
    - [P-SSA-002] use of an undefined register / register defined twice
    - [P-SSA-003] unknown argument
    - [P-SSA-004] unknown block label (branch or phi)
    - [P-SSA-005] block without a terminator (raised eagerly by
      [Ssa.Builder]; a well-typed [func] cannot represent it)
    - [P-SSA-006] definition does not dominate a use (phi operands are
      checked against the end of their incoming predecessor)
    - [P-SSA-007] phi ill-formed: after a non-phi, empty, duplicate or
      non-predecessor incoming labels, missing predecessor coverage
    - [P-SSA-008] type error (unknown types — [Load], [Call] results —
      are never reported; only definite conflicts are) *)

val validate : Promise_ir.Ssa.func -> Promise_core.Diag.t list
(** All diagnostics, in {!Promise_core.Diag.sort} order; [[]] means
    the function is well-formed. *)
