module Diag = Promise_core.Diag
module Ssa = Promise_ir.Ssa
module SS = Set.Make (String)

let ty_name t = Format.asprintf "%a" Ssa.pp_ty t

let validate (f : Ssa.func) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let blocks = f.Ssa.blocks in
  if blocks = [] then
    add (Diag.make ~code:"P-SSA-007" "function has no entry block");
  (* ---- block labels (P-SSA-001) ---- *)
  let labels = Hashtbl.create 16 in
  List.iter
    (fun (b : Ssa.block) ->
      if Hashtbl.mem labels b.label then
        add
          (Diag.errorf ~code:"P-SSA-001" ~span:(Diag.Block b.label)
             "duplicate block label %S" b.label)
      else Hashtbl.add labels b.label ())
    blocks;
  (* ---- single assignment (P-SSA-002): register id ranges must not
     overlap — registers are numbered positionally, so overlapping
     [first_index, first_index + length) windows mean a register has
     two defining instructions. ---- *)
  let ranges =
    List.filter_map
      (fun (b : Ssa.block) ->
        if Array.length b.Ssa.instrs = 0 then None
        else Some (b.Ssa.first_index, Array.length b.Ssa.instrs, b.Ssa.label))
      blocks
    |> List.sort compare
  in
  let rec check_overlap = function
    | (s1, n1, l1) :: ((s2, _, l2) :: _ as rest) ->
        if s2 < s1 + n1 then
          add
            (Diag.errorf ~code:"P-SSA-002" ~span:(Diag.Block l2)
               "register %%%d defined more than once (blocks %S and %S \
                overlap)"
               s2 l1 l2);
        check_overlap rest
    | _ -> ()
  in
  check_overlap ranges;
  (* ---- definition sites ---- *)
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (b : Ssa.block) ->
      Array.iteri
        (fun i instr ->
          let id = b.Ssa.first_index + i in
          if not (Hashtbl.mem defs id) then Hashtbl.add defs id (b.Ssa.label, instr))
        b.Ssa.instrs)
    blocks;
  (* ---- CFG ---- *)
  let succs (b : Ssa.block) =
    match b.Ssa.terminator with
    | Ssa.Br l -> [ l ]
    | Ssa.Cond_br { if_true; if_false; _ } -> [ if_true; if_false ]
    | Ssa.Ret _ -> []
  in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun (b : Ssa.block) -> Hashtbl.replace preds b.Ssa.label SS.empty)
    blocks;
  List.iter
    (fun (b : Ssa.block) ->
      List.iter
        (fun l ->
          match Hashtbl.find_opt preds l with
          | Some s -> Hashtbl.replace preds l (SS.add b.Ssa.label s)
          | None -> ())
        (succs b))
    blocks;
  let preds_of l =
    match Hashtbl.find_opt preds l with Some s -> s | None -> SS.empty
  in
  (* ---- dominators (iterative dataflow; CFGs here are tiny) ---- *)
  let all =
    List.fold_left (fun s (b : Ssa.block) -> SS.add b.Ssa.label s) SS.empty blocks
  in
  let dom = Hashtbl.create 16 in
  (match blocks with
  | [] -> ()
  | entry_block :: _ ->
      let entry = entry_block.Ssa.label in
      SS.iter
        (fun l ->
          Hashtbl.replace dom l
            (if String.equal l entry then SS.singleton entry else all))
        all;
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (b : Ssa.block) ->
            if not (String.equal b.Ssa.label entry) then begin
              let inter =
                SS.fold
                  (fun p acc ->
                    let dp =
                      match Hashtbl.find_opt dom p with
                      | Some s -> s
                      | None -> all
                    in
                    match acc with
                    | None -> Some dp
                    | Some a -> Some (SS.inter a dp))
                  (preds_of b.Ssa.label) None
              in
              let nd =
                SS.add b.Ssa.label
                  (match inter with Some s -> s | None -> all)
              in
              if not (SS.equal nd (Hashtbl.find dom b.Ssa.label)) then begin
                Hashtbl.replace dom b.Ssa.label nd;
                changed := true
              end
            end)
          blocks
      done);
  let dominates a b =
    match Hashtbl.find_opt dom b with Some s -> SS.mem a s | None -> false
  in
  (* ---- permissive type inference (unknowns check nothing) ---- *)
  let ty_cache = Hashtbl.create 64 in
  let visiting = Hashtbl.create 16 in
  let rec ty_of_value v =
    match v with
    | Ssa.Const_int _ -> Some Ssa.Scalar_int
    | Ssa.Const_float _ -> Some Ssa.Scalar_float
    | Ssa.Arg name -> Ssa.param_ty f name
    | Ssa.Vreg id -> (
        match Hashtbl.find_opt ty_cache id with
        | Some t -> t
        | None ->
            if Hashtbl.mem visiting id then None
            else begin
              Hashtbl.add visiting id ();
              let t =
                match Hashtbl.find_opt defs id with
                | None -> None
                | Some (_, instr) -> ty_of_instr instr
              in
              Hashtbl.remove visiting id;
              Hashtbl.replace ty_cache id t;
              t
            end)
  and ty_of_instr instr =
    match instr with
    | Ssa.Getindex { matrix; _ } -> (
        match ty_of_value matrix with
        | Some (Ssa.Matrix (_, c)) -> Some (Ssa.Vector c)
        | _ -> None)
    | Ssa.Vec_binop { lhs; rhs; _ } -> (
        match (ty_of_value lhs, ty_of_value rhs) with
        | Some (Ssa.Vector n), _ | _, Some (Ssa.Vector n) ->
            Some (Ssa.Vector n)
        | _ -> None)
    | Ssa.Vec_unop { operand; _ } -> ty_of_value operand
    | Ssa.Reduce _ -> Some Ssa.Scalar_float
    | Ssa.Scalar_unop _ -> Some Ssa.Scalar_float
    | Ssa.Int_binop _ -> Some Ssa.Scalar_int
    | Ssa.Icmp _ -> Some Ssa.Scalar_int
    | Ssa.Getelementptr _ -> Some Ssa.Ptr
    | Ssa.Store _ | Ssa.Load _ | Ssa.Call _ -> None
    | Ssa.Phi { incoming } -> (
        let tys = List.filter_map (fun (_, v) -> ty_of_value v) incoming in
        match tys with
        | t :: rest when List.for_all (Ssa.equal_ty t) rest -> Some t
        | _ -> None)
  in
  let is_vector = function Ssa.Vector _ -> true | _ -> false in
  let is_scalar = function
    | Ssa.Scalar_int | Ssa.Scalar_float -> true
    | _ -> false
  in
  let is_int = function Ssa.Scalar_int -> true | _ -> false in
  let expect span what pred v =
    match ty_of_value v with
    | None -> ()
    | Some t ->
        if not (pred t) then
          add
            (Diag.errorf ~code:"P-SSA-008" ~span "%s has type %s" what
               (ty_name t))
  in
  let type_check span instr =
    match instr with
    | Ssa.Getindex { matrix; index } ->
        expect span "getindex expects a matrix but the operand"
          (function Ssa.Matrix _ -> true | _ -> false)
          matrix;
        expect span "getindex expects an integer index but the operand" is_int
          index
    | Ssa.Vec_binop { lhs; rhs; _ } -> (
        expect span "vector binop expects a vector but the left operand"
          is_vector lhs;
        expect span "vector binop expects a vector but the right operand"
          is_vector rhs;
        match (ty_of_value lhs, ty_of_value rhs) with
        | Some (Ssa.Vector n), Some (Ssa.Vector m) when n <> m ->
            add
              (Diag.errorf ~code:"P-SSA-008" ~span
                 "vector length mismatch: %d vs %d" n m)
        | _ -> ())
    | Ssa.Vec_unop { operand; _ } ->
        expect span "vector unop expects a vector but the operand" is_vector
          operand
    | Ssa.Reduce { operand; _ } ->
        expect span "reduce expects a vector but the operand" is_vector operand
    | Ssa.Scalar_unop { operand; _ } ->
        expect span "scalar unop expects a scalar but the operand" is_scalar
          operand
    | Ssa.Int_binop { lhs; rhs; _ } ->
        expect span "integer binop expects an integer but the left operand"
          is_int lhs;
        expect span "integer binop expects an integer but the right operand"
          is_int rhs
    | Ssa.Icmp { lhs; rhs; _ } ->
        expect span "icmp expects a scalar but the left operand" is_scalar lhs;
        expect span "icmp expects a scalar but the right operand" is_scalar rhs
    | Ssa.Getelementptr { base; index } ->
        expect span "getelementptr expects a vector or pointer base but it"
          (function Ssa.Vector _ | Ssa.Ptr -> true | _ -> false)
          base;
        expect span "getelementptr expects an integer index but the operand"
          is_int index
    | Ssa.Store { ptr; _ } ->
        expect span "store expects a pointer but the destination"
          (function Ssa.Ptr -> true | _ -> false)
          ptr
    | Ssa.Load { ptr } ->
        expect span "load expects a pointer but the operand"
          (function Ssa.Ptr -> true | _ -> false)
          ptr
    | Ssa.Phi _ | Ssa.Call _ -> ()
  in
  (* ---- per-value checks ---- *)
  let check_arg span name =
    if Ssa.param_ty f name = None then
      add (Diag.errorf ~code:"P-SSA-003" ~span "unknown argument %S" name)
  in
  let check_value ~block ~use_id ~span v =
    match v with
    | Ssa.Const_int _ | Ssa.Const_float _ -> ()
    | Ssa.Arg name -> check_arg span name
    | Ssa.Vreg id -> (
        match Hashtbl.find_opt defs id with
        | None ->
            add
              (Diag.errorf ~code:"P-SSA-002" ~span
                 "use of undefined register %%%d" id)
        | Some (def_block, _) ->
            let ok =
              if String.equal def_block block then id < use_id
              else dominates def_block block
            in
            if not ok then
              add
                (Diag.errorf ~code:"P-SSA-006" ~span
                   "definition of %%%d (block %S) does not dominate its use"
                   id def_block))
  in
  let check_label span l =
    if not (Hashtbl.mem labels l) then
      add (Diag.errorf ~code:"P-SSA-004" ~span "unknown block label %S" l)
  in
  List.iter
    (fun (b : Ssa.block) ->
      let seen_non_phi = ref false in
      Array.iteri
        (fun i instr ->
          let id = b.Ssa.first_index + i in
          let span = Diag.Instr { block = b.Ssa.label; vreg = id } in
          (match instr with
          | Ssa.Phi { incoming } ->
              if !seen_non_phi then
                add
                  (Diag.errorf ~code:"P-SSA-007" ~span
                     "phi after a non-phi instruction");
              if incoming = [] then
                add
                  (Diag.errorf ~code:"P-SSA-007" ~span
                     "phi with no incoming values");
              let ps = preds_of b.Ssa.label in
              let seen = Hashtbl.create 4 in
              List.iter
                (fun (l, v) ->
                  check_label span l;
                  if Hashtbl.mem labels l then begin
                    if Hashtbl.mem seen l then
                      add
                        (Diag.errorf ~code:"P-SSA-007" ~span
                           "duplicate phi incoming label %S" l);
                    Hashtbl.replace seen l ();
                    if not (SS.mem l ps) then
                      add
                        (Diag.errorf ~code:"P-SSA-007" ~span
                           "phi incoming label %S is not a predecessor of \
                            block %S"
                           l b.Ssa.label)
                  end;
                  (* A phi operand must be available at the END of the
                     incoming predecessor, not at the phi itself — this
                     admits the loop-carried forward references the DSL
                     frontend emits. *)
                  match v with
                  | Ssa.Vreg rid -> (
                      match Hashtbl.find_opt defs rid with
                      | None ->
                          add
                            (Diag.errorf ~code:"P-SSA-002" ~span
                               "use of undefined register %%%d" rid)
                      | Some (def_block, _) ->
                          if
                            Hashtbl.mem labels l
                            && not
                                 (String.equal def_block l
                                 || dominates def_block l)
                          then
                            add
                              (Diag.errorf ~code:"P-SSA-006" ~span
                                 "phi operand %%%d does not dominate the end \
                                  of predecessor %S"
                                 rid l))
                  | Ssa.Arg name -> check_arg span name
                  | Ssa.Const_int _ | Ssa.Const_float _ -> ())
                incoming;
              SS.iter
                (fun p ->
                  if not (List.exists (fun (l, _) -> String.equal l p) incoming)
                  then
                    add
                      (Diag.errorf ~code:"P-SSA-007" ~span
                         "phi is missing an incoming value for predecessor %S"
                         p))
                ps
          | _ ->
              seen_non_phi := true;
              List.iter
                (check_value ~block:b.Ssa.label ~use_id:id ~span)
                (Ssa.instr_operands instr));
          type_check span instr)
        b.Ssa.instrs;
      let tspan = Diag.Block b.Ssa.label in
      let term_id = b.Ssa.first_index + Array.length b.Ssa.instrs in
      let term_use v =
        check_value ~block:b.Ssa.label ~use_id:term_id ~span:tspan v
      in
      match b.Ssa.terminator with
      | Ssa.Br l -> check_label tspan l
      | Ssa.Cond_br { cond; if_true; if_false } ->
          term_use cond;
          check_label tspan if_true;
          check_label tspan if_false
      | Ssa.Ret (Some v) -> term_use v
      | Ssa.Ret None -> ())
    blocks;
  Diag.sort (List.rev !diags)
