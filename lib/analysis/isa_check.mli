(** Whole-program Task-ISA verifier (lint pass 1 of 3).

    [Task.validate] checks one Task in isolation; these checks span
    Task boundaries — the invariants of paper §3.1–§3.3 a program must
    satisfy as a whole.

    Diagnostic codes (beyond the per-Task [P-TSK-001..003] re-emitted
    with spans):
    - [P-ISA-001] dead X-REG store: no later Task reads an X operand
    - [P-ISA-002] W window exceeds the bank's word rows (would wrap)
    - [P-ISA-003] analog value dropped at a Task boundary (no ADC)
    - [P-ISA-004] iteration count indivisible by ACC_NUM+1 (the tail
      accumulation group never emits)
    - [P-ISA-005] X_PRD out of phase with ACC_NUM (groups mix segments)
    - [P-ISA-006] inconsistent or undrained DES=acc accumulator chain *)

val check_task :
  ?span:Promise_core.Diag.span -> Promise_isa.Task.t -> Promise_core.Diag.t list
(** Per-Task legality as a diagnostic list ([[]] when valid). *)

val check_tasks :
  spans:(int -> Promise_core.Diag.span) ->
  Promise_isa.Task.t list ->
  Promise_core.Diag.t list
(** Full per-Task + whole-program check with caller-chosen spans. *)

val check_program : Promise_isa.Task.t list -> Promise_core.Diag.t list
(** {!check_tasks} with [Task i] spans. *)

val check_program_located :
  (int * Promise_isa.Task.t) list -> Promise_core.Diag.t list
(** {!check_tasks} over [Asm.parse_program_located] output, with
    [Line n] spans. *)
