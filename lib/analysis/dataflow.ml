module Ssa = Promise_ir.Ssa
module Graph = Promise_ir.Graph

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

type graph = { n : int; succs : int -> int list; preds : int -> int list }

let of_sequence n =
  {
    n;
    succs = (fun i -> if i + 1 < n then [ i + 1 ] else []);
    preds = (fun i -> if i > 0 then [ i - 1 ] else []);
  }

let of_ssa (f : Ssa.func) =
  let blocks = Array.of_list f.Ssa.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create n in
  Array.iteri (fun i b -> Hashtbl.replace index b.Ssa.label i) blocks;
  let succs_arr = Array.make n [] in
  let preds_arr = Array.make n [] in
  Array.iteri
    (fun i b ->
      let targets =
        match b.Ssa.terminator with
        | Ssa.Br l -> [ l ]
        | Ssa.Cond_br { if_true; if_false; _ } -> [ if_true; if_false ]
        | Ssa.Ret _ -> []
      in
      (* unknown labels are P-SSA-004 territory, not ours to crash on *)
      let tgt_ids = List.filter_map (Hashtbl.find_opt index) targets in
      succs_arr.(i) <- tgt_ids;
      List.iter (fun j -> preds_arr.(j) <- preds_arr.(j) @ [ i ]) tgt_ids)
    blocks;
  ( { n; succs = (fun i -> succs_arr.(i)); preds = (fun i -> preds_arr.(i)) },
    blocks )

let of_task_graph g =
  {
    n = Graph.n_tasks g;
    succs = (fun i -> List.map fst (Graph.successors g i));
    preds = (fun i -> List.map fst (Graph.predecessors g i));
  }

module Make (L : LATTICE) = struct
  type result = { entry : L.t array; exit : L.t array }

  let solve ?(init = fun _ -> L.bottom) ~direction ~graph ~transfer () =
    let n = graph.n in
    let entry = Array.make n L.bottom in
    let exit = Array.make n L.bottom in
    (* In the flow direction: [before] is the joined incoming fact,
       [after] = transfer before. Forward maps (before, after) onto
       (entry, exit); backward onto (exit, entry). *)
    let incoming, dependents =
      match direction with
      | Forward -> (graph.preds, graph.succs)
      | Backward -> (graph.succs, graph.preds)
    in
    let before, after =
      match direction with
      | Forward -> (entry, exit)
      | Backward -> (exit, entry)
    in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let push i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    (* seed in flow order so the first sweep already propagates far *)
    (match direction with
    | Forward ->
        for i = 0 to n - 1 do
          push i
        done
    | Backward ->
        for i = n - 1 downto 0 do
          push i
        done);
    (* Defensive cap: a finite-height lattice over this graph converges
       in O(n · height) steps; anything past a generous multiple means
       a non-monotone transfer or an infinite-height lattice. *)
    let fuel = ref (max 4096 (n * n * 16)) in
    while not (Queue.is_empty queue) do
      decr fuel;
      if !fuel < 0 then
        invalid_arg
          "Dataflow.solve: no fixpoint (non-monotone transfer or \
           infinite-height lattice?)";
      let i = Queue.take queue in
      queued.(i) <- false;
      let inc =
        match incoming i with
        | [] -> init i
        | js -> List.fold_left (fun acc j -> L.join acc after.(j)) L.bottom js
      in
      before.(i) <- inc;
      let out = transfer i inc in
      if not (L.equal out after.(i)) then begin
        after.(i) <- out;
        List.iter push (dependents i)
      end
    done;
    { entry; exit }
end
