(** Lint report assembly and rendering, shared by [promise-lint], the
    [--lint] flags of the other CLIs, and the test suite.

    A {!report} is one lint target (a [.pasm] file, a DSL kernel, a
    benchmark) with its sorted diagnostics. *)

type report = { target : string; diags : Promise_core.Diag.t list }

val make : target:string -> Promise_core.Diag.t list -> report
(** Sorts the diagnostics. *)

val lint_pasm : target:string -> string -> report
(** Parse assembly source and run the whole-program ISA verifier; a
    parse failure becomes the report's single diagnostic. *)

val errors : report -> int
val warnings : report -> int
val total_errors : report list -> int
val total_warnings : report list -> int

val exit_code : report list -> int
(** 0 when no error-severity diagnostics (warnings allowed), 1
    otherwise. CLI usage/IO failures use exit code 2 on top of this. *)

val summary : report list -> string
(** One line: ["N error(s), M warning(s) in K target(s)"]. *)

val render_text : report -> string
(** One line per diagnostic, prefixed with the target; ["<target>:
    clean"] when empty. *)

val render_json : report list -> string
(** A single JSON object with a summary and per-target diagnostics —
    the CI artifact format. *)
