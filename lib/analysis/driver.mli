(** Lint report assembly and rendering, shared by [promise-lint], the
    [--lint] flags of the other CLIs, and the test suite.

    A {!report} is one lint target (a [.pasm] file, a DSL kernel, a
    benchmark) with its sorted, deduplicated diagnostics. On top of
    the raw reports the driver implements the lint policy layer:
    warning promotion ([--deny]), warning budgets ([--max-warnings]),
    fingerprint baselines ([--baseline]) and the text/JSON/SARIF
    renderers. *)

type report = { target : string; diags : Promise_core.Diag.t list }

val dedupe : Promise_core.Diag.t list -> Promise_core.Diag.t list
(** Sort (span, then code, then severity) and drop structural
    duplicates — the byte-reproducible order cram and baseline diffs
    depend on. *)

val make : target:string -> Promise_core.Diag.t list -> report
(** Sorts and dedupes the diagnostics. *)

val lint_pasm : target:string -> string -> report
(** Parse assembly source and run the whole-program ISA verifier; a
    parse failure becomes the report's single diagnostic. *)

val errors : report -> int
val warnings : report -> int
val total_errors : report list -> int
val total_warnings : report list -> int

val exit_code : ?max_warnings:int -> report list -> int
(** 0 when no error-severity diagnostics and the warning count is
    within [max_warnings] (unlimited when omitted), 1 otherwise. CLI
    usage/IO failures use exit code 2 on top of this. *)

val summary : report list -> string
(** One line: ["N error(s), M warning(s) in K target(s)"]. *)

val apply_deny : deny:string list -> report list -> report list
(** Promote every warning whose code starts with one of the [deny]
    prefixes (e.g. ["P-TIM"]) to an error. *)

val fingerprint : report -> Promise_core.Diag.t -> string
(** {!Promise_core.Diag.fingerprint} salted with the report target. *)

val baseline_of_reports : report list -> string
(** The baseline JSON ([{"version":1,"fingerprints":[…]}]) covering
    every current diagnostic — what [--write-baseline] emits. *)

val parse_baseline : string -> (string list, string) result
(** Read a baseline file's fingerprint list. *)

val apply_baseline :
  baseline:string list -> report list -> report list * int
(** Drop every diagnostic whose fingerprint is in the baseline;
    returns the filtered reports and the suppressed count. *)

val render_text : report -> string
(** One line per diagnostic, prefixed with the target; ["<target>:
    clean"] when empty. *)

val render_json : report list -> string
(** A single JSON object with a summary and per-target diagnostics —
    the CI artifact format. *)

val render_sarif : ?tool_version:string -> report list -> string
(** SARIF 2.1.0 with one run; each result carries its rule id, level,
    location and the fingerprint under
    [partialFingerprints.promiseLint/v1]. *)
