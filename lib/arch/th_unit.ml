open Promise_isa

type config = {
  op : Opcode.class4;
  acc_num : int;
  threshold : float;
  gain : float;
  des : Opcode.destination;
}

type emit = { value : float; group_index : int; des : Opcode.destination }

type t = {
  config : config;
  mutable group_acc : float;
  mutable group_count : int;
  mutable groups_emitted : int;
  mutable extremum : (int * float) option;
  mutable ops : int;
}

let create config =
  if config.acc_num < 0 || config.acc_num > 3 then
    invalid_arg "Th_unit.create: ACC_NUM out of range [0, 3]";
  {
    config;
    group_acc = 0.0;
    group_count = 0;
    groups_emitted = 0;
    extremum = None;
    ops = 0;
  }

(* PLAN approximation (Amin, Curtis & Hayes-Gill 1997), the classic
   piece-wise-linear sigmoid used by FPGA/ASIC TH blocks such as [29].
   The middle breakpoint is 7/3 — the exact intersection of the two
   segments — rather than the commonly quoted 2.375, which leaves a
   ~0.004 discontinuity (and a monotonicity violation) at the seam. *)
let pwl_sigmoid x =
  let a = Float.abs x in
  let y =
    if a >= 5.0 then 1.0
    else if a >= 7.0 /. 3.0 then (0.03125 *. a) +. 0.84375
    else if a >= 1.0 then (0.125 *. a) +. 0.625
    else (0.25 *. a) +. 0.5
  in
  if x >= 0.0 then y else 1.0 -. y

let relu x = Float.max 0.0 x

let better_than op candidate incumbent =
  match op with
  | Opcode.C4_max -> candidate > incumbent
  | Opcode.C4_min -> candidate < incumbent
  | _ -> assert false

let apply_group t value =
  let c = t.config in
  t.ops <- t.ops + 1;
  let index = t.groups_emitted in
  t.groups_emitted <- index + 1;
  let emit v = Some { value = v; group_index = index; des = c.des } in
  match c.op with
  | Opcode.C4_accumulate -> emit value
  | Opcode.C4_mean -> emit (value /. float_of_int (c.acc_num + 1))
  | Opcode.C4_threshold -> emit (if value > c.threshold then 1.0 else 0.0)
  | Opcode.C4_sigmoid -> emit (pwl_sigmoid value)
  | Opcode.C4_relu -> emit (relu value)
  | Opcode.C4_max | Opcode.C4_min ->
      (match t.extremum with
      | Some (_, incumbent) when not (better_than c.op value incumbent) -> ()
      | _ -> t.extremum <- Some (index, value));
      None

let push t sample =
  let c = t.config in
  t.group_acc <- t.group_acc +. (c.gain *. sample);
  t.group_count <- t.group_count + 1;
  if t.group_count = c.acc_num + 1 then begin
    let value = t.group_acc in
    t.group_acc <- 0.0;
    t.group_count <- 0;
    apply_group t value
  end
  else None

let finish t =
  let pending =
    if t.group_count > 0 then begin
      let value = t.group_acc in
      t.group_acc <- 0.0;
      t.group_count <- 0;
      apply_group t value
    end
    else None
  in
  match t.config.op with
  | Opcode.C4_max | Opcode.C4_min -> (
      match t.extremum with
      | Some (index, value) ->
          Some { value; group_index = index; des = t.config.des }
      | None -> pending)
  | _ -> pending

let ops_executed t = t.ops
let argext t = t.extremum

(* Restore the initial state of [create t.config] in place. The batch
   execution engine replays one TH per decision; resetting instead of
   re-creating keeps the per-decision loop allocation-free. *)
let reset t =
  t.group_acc <- 0.0;
  t.group_count <- 0;
  t.groups_emitted <- 0;
  t.extremum <- None;
  t.ops <- 0
