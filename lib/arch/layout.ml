type plan = {
  vector_len : int;
  rows : int;
  banks : int;
  multi_bank : int;
  segments : int;
  lanes_per_bank : int;
  word_rows_per_task : int;
  rows_per_task : int;
  tasks : int;
}

let ceil_div a b = (a + b - 1) / b

let plan ?(max_lanes = Params.lanes) ~vector_len ~rows () =
  if vector_len < 1 then Error "vector_len must be >= 1"
  else if rows < 1 then Error "rows must be >= 1"
  else if max_lanes < 1 || max_lanes > Params.lanes then
    Error
      (Printf.sprintf "max_lanes must be in 1..%d (got %d)" Params.lanes
         max_lanes)
  else
    let max_banks_per_task = 8 and max_segments = 4 in
    if vector_len > max_banks_per_task * max_segments * max_lanes then
      Error
        (Printf.sprintf
           "vector of %d elements exceeds 8 banks x 4 segments x %d lanes"
           vector_len max_lanes)
    else
      (* Prefer parallelism (more banks) over serialization (segments). *)
      let rec pick_banks multi_bank =
        let banks = 1 lsl multi_bank in
        if vector_len <= banks * max_lanes || multi_bank = 3 then
          (banks, multi_bank)
        else pick_banks (multi_bank + 1)
      in
      let banks, multi_bank = pick_banks 0 in
      let segments = ceil_div vector_len (banks * max_lanes) in
      let lanes_per_bank = ceil_div vector_len (banks * segments) in
      let max_rows_per_task =
        min (Params.word_rows / segments) (128 / segments)
      in
      let rows_per_task = min rows max_rows_per_task in
      let tasks = ceil_div rows rows_per_task in
      Ok
        {
          vector_len;
          rows;
          banks;
          multi_bank;
          segments;
          lanes_per_bank;
          word_rows_per_task = segments * rows_per_task;
          rows_per_task;
          tasks;
        }

let plan_exn ?max_lanes ~vector_len ~rows () =
  match plan ?max_lanes ~vector_len ~rows () with
  | Ok p -> p
  | Error msg -> invalid_arg ("Layout.plan: " ^ msg)

let spare_map ~faulty =
  let bad = Array.make Params.lanes false in
  List.iter
    (fun l -> if l >= 0 && l < Params.lanes then bad.(l) <- true)
    faulty;
  let healthy = ref [] in
  for l = Params.lanes - 1 downto 0 do
    if not bad.(l) then healthy := l :: !healthy
  done;
  Array.of_list !healthy

let lane_mask_of_map map ~used =
  if used < 0 || used > Array.length map then
    invalid_arg "Layout.lane_mask_of_map: used exceeds map length";
  let mask = Array.make Params.lanes false in
  for i = 0 to used - 1 do
    mask.(map.(i)) <- true
  done;
  mask

let x_prd p = p.segments - 1
let total_banks p = p.banks * p.tasks

let chunk_rows p k =
  if k < 0 || k >= p.tasks then invalid_arg "Layout.chunk_rows: bad chunk";
  if k = p.tasks - 1 then p.rows - (k * p.rows_per_task) else p.rows_per_task

let slice_of_vector p v ~bank ~segment =
  if bank < 0 || bank >= p.banks then invalid_arg "Layout.slice: bad bank";
  if segment < 0 || segment >= p.segments then
    invalid_arg "Layout.slice: bad segment";
  let out = Array.make p.lanes_per_bank 0 in
  let base = ((bank * p.segments) + segment) * p.lanes_per_bank in
  let len = Array.length v in
  for lane = 0 to p.lanes_per_bank - 1 do
    let e = base + lane in
    if e < len then out.(lane) <- v.(e)
  done;
  out
