(** The 512×256 6T bit-cell array of one bank (paper §2.2, §3.1).

    Words are stored {e column-major}: an 8-bit word occupies 4 consecutive
    rows (one word row) in a pair of neighboring columns holding the 4-bit
    MSB and 4-bit LSB halves (sub-ranged read, [9]). One word row therefore
    holds a 128-element vector, and asserting its 4 word lines with binary
    PWM durations reads the whole vector out as analog bit-line drops in a
    single access (S1, aREAD).

    Word values are 8-bit two's-complement codes in [-128, 127],
    representing normalized reals [code / 128 ∈ [-1, 1)]. *)

type t

val create : unit -> t

(** [write t ~word_row values] — digital write of up to {!Params.lanes}
    codes into [word_row]; missing lanes are zeroed.
    Raises [Invalid_argument] on bad address or out-of-range codes. *)
val write : t -> word_row:int -> int array -> unit

(** [read t ~word_row] — digital read of the 128 stored codes. *)
val read : t -> word_row:int -> int array

(** [read_lane t ~word_row ~lane] — one stored code. *)
val read_lane : t -> word_row:int -> lane:int -> int

(** [aread t ~word_row ~swing ~noise ~lut] — analog read: each code is
    converted to its normalized value, passed through the deterministic
    transfer curve [lut] and perturbed by the spatial random error model
    at [swing]. *)
val aread :
  t ->
  word_row:int ->
  swing:int ->
  noise:Promise_analog.Noise.t ->
  lut:Promise_analog.Lut.t ->
  float array

(** [msb_lsb_view t ~word_row ~lane] — the (msb, lsb) 4-bit halves the
    sub-ranged layout stores for a lane, for layout-level tests.
    The 8-bit unsigned pattern is [msb * 16 + lsb]. *)
val msb_lsb_view : t -> word_row:int -> lane:int -> int * int

(** [normalized code] — [code / 128.]. *)
val normalized : int -> float

(** [quantize v] — nearest 8-bit code for [v], clamped to [[-1, 1)];
    delegates to {!Promise_core.Quant.quantize8}, the one quantizer
    shared by every storage path. *)
val quantize : float -> int

(** [row_unsafe t ~word_row] — the live storage row itself, NOT a copy:
    the caller must treat it as read-only and must not hold it across a
    {!write}. This is the zero-allocation read the fused iteration
    kernels ({!Kernel}) are built on; everything else should use
    {!read}. *)
val row_unsafe : t -> word_row:int -> int array
