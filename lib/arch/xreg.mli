(** X-REG: the digital vector register file of a bank (paper §3.1).

    Holds {!Params.xreg_depth} (= 8) vectors of {!Params.lanes} (= 128)
    8-bit codes. The input operand X of a Task lives here with temporal
    locality: it is constant across a Task's iterations while W streams
    from the bit-cell array. *)

type t

val create : unit -> t

(** [load t ~index codes] — fill vector [index]; short vectors are
    zero-padded. *)
val load : t -> index:int -> int array -> unit

(** [get t ~index] — the stored codes. *)
val get : t -> index:int -> int array

(** [row_unsafe t ~index] — the live lane array itself, NOT a copy:
    read-only for the caller, and staged writes ({!stage_element},
    {!load}) show through immediately — exactly the visibility the
    sequential iteration loop has. Used by the fused iteration kernels
    ({!Kernel}); everything else should use {!get}. *)
val row_unsafe : t -> index:int -> int array

(** [get_normalized t ~index] — stored codes as normalized reals
    (ideal DAC). *)
val get_normalized : t -> index:int -> float array

(** [stage_element t ~index code] — append one 8-bit code produced by a
    Class-4 op with destination X-REG; elements fill the vector lane by
    lane and wrap (so a following task can use it as its X operand). *)
val stage_element : t -> index:int -> int -> unit

(** [staged_count t ~index] — lanes written by {!stage_element} since the
    last [load]/[reset_staging]. *)
val staged_count : t -> index:int -> int

val reset_staging : t -> index:int -> unit
