(** Mapping workloads onto banks and word rows (paper §3.3, "Extension to
    Large Scale Applications").

    A vector of length [vector_len] is cut into [banks × segments] slices
    of [lanes_per_bank ≤ 128] elements: element [e] lives in bank
    [e / (segments·lanes_per_bank)], segment
    [(e mod segments·lanes_per_bank) / lanes_per_bank]. Consecutive
    segments of one W row occupy consecutive word rows, so a Task covers
    a whole row in [segments] iterations with [X_PRD = segments - 1] and
    [RPT_NUM = segments·rows - 1]. *)

type plan = {
  vector_len : int;
  rows : int;  (** number of weight vectors W_j (N_o) *)
  banks : int;  (** 2^multi_bank banks per task *)
  multi_bank : int;
  segments : int;  (** word rows per vector per bank; [x_prd = segments-1] *)
  lanes_per_bank : int;
  word_rows_per_task : int;  (** per bank: [segments * rows_per_task] *)
  rows_per_task : int;  (** ≤ 128/segments and ≤ 128 (RPT_NUM limit) *)
  tasks : int;  (** row chunks = ceil (rows / rows_per_task) *)
}

(** [plan ~vector_len ~rows ()] — a placement, or [Error] when the
    vector cannot fit (needs more than 8 banks × 4 segments).
    [max_lanes] (default 128) caps the lanes used per bank — lane
    sparing plans around faulty lanes by reserving [128 - max_lanes]
    spare columns (see {!spare_map}). *)
val plan :
  ?max_lanes:int -> vector_len:int -> rows:int -> unit -> (plan, string) result

(** [plan_exn ?max_lanes ~vector_len ~rows ()]. *)
val plan_exn : ?max_lanes:int -> vector_len:int -> rows:int -> unit -> plan

(** [x_prd p] — [segments - 1]. *)
val x_prd : plan -> int

(** [total_banks p] — banks needed to hold every row chunk resident
    simultaneously: [banks × tasks]. *)
val total_banks : plan -> int

(** [chunk_rows p k] — rows covered by row-chunk [k] (the last chunk may
    be short). *)
val chunk_rows : plan -> int -> int

(** [slice_of_vector p v ~bank ~segment] — the [lanes_per_bank] codes of
    [v] that bank [bank], segment [segment] holds (zero-padded). *)
val slice_of_vector : plan -> int array -> bank:int -> segment:int -> int array

(** {2 Lane sparing} *)

(** [spare_map ~faulty] — the healthy physical lanes, ascending: logical
    lane [l] of a spared layout maps to physical lane [(spare_map
    ~faulty).(l)]. Combine with [plan ~max_lanes:(Array.length map)]
    so every slice fits in the healthy columns. *)
val spare_map : faulty:int list -> int array

(** [lane_mask_of_map map ~used] — a 128-wide boolean mask that is true
    exactly at the physical lanes [map.(0 .. used-1)]; feed it to
    {!Machine.execute} so charge sharing averages only populated
    lanes. *)
val lane_mask_of_map : int array -> used:int -> bool array
