module E = Promise_core.Error

let layer = "faults"

type transient = { seed : int; rate : float }

type t = {
  stuck : (int * int) list;  (* sorted by lane *)
  dead_lanes : int list;  (* sorted *)
  dead_bank : bool;
  adc_offset : float;
  dead_adc_units : int;
  xreg_flip : transient option;
  swing_drift : int;
  leakage_mult : float;
}

let none =
  {
    stuck = [];
    dead_lanes = [];
    dead_bank = false;
    adc_offset = 0.0;
    dead_adc_units = 0;
    xreg_flip = None;
    swing_drift = 0;
    leakage_mult = 1.0;
  }

let is_none t =
  t.stuck = [] && t.dead_lanes = [] && (not t.dead_bank)
  && t.adc_offset = 0.0 && t.dead_adc_units = 0 && t.xreg_flip = None
  && t.swing_drift = 0 && t.leakage_mult = 1.0

let equal (a : t) (b : t) = a = b

let check_lane lane =
  if lane < 0 || lane >= Params.lanes then
    E.fail ~layer ~code:E.Invalid_operand
      ~context:[ ("lane", string_of_int lane) ]
      (Printf.sprintf "lane out of range [0, %d)" Params.lanes)
  else Ok ()

let ( let* ) = Result.bind

let with_stuck_lane t ~lane ~code =
  let* () = check_lane lane in
  if code < -128 || code > 127 then
    E.fail ~layer ~code:E.Invalid_operand
      ~context:[ ("code", string_of_int code) ]
      "stuck code is not a signed 8-bit value (-128..127)"
  else
    Ok
      {
        t with
        stuck = List.sort compare ((lane, code) :: List.remove_assoc lane t.stuck);
        dead_lanes = List.filter (fun l -> l <> lane) t.dead_lanes;
      }

let with_dead_lane t ~lane =
  let* () = check_lane lane in
  Ok
    {
      t with
      dead_lanes = List.sort_uniq compare (lane :: t.dead_lanes);
      stuck = List.remove_assoc lane t.stuck;
    }

let with_dead_bank t = { t with dead_bank = true }
let with_adc_offset t offset = { t with adc_offset = offset }

let with_dead_adc_units t n =
  let units = Promise_analog.Adc.units_per_bank in
  if n < 0 || n > units then
    E.fail ~layer ~code:E.Invalid_operand
      ~context:[ ("units", string_of_int n) ]
      (Printf.sprintf "dead ADC unit count out of range [0, %d]" units)
  else Ok { t with dead_adc_units = n }

let with_xreg_flips t ~seed ~rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    E.fail ~layer ~code:E.Invalid_operand
      ~context:[ ("rate", string_of_float rate) ]
      "X-REG flip rate must be in [0, 1]"
  else if rate = 0.0 then Ok { t with xreg_flip = None }
  else Ok { t with xreg_flip = Some { seed; rate } }

let with_swing_drift t drift =
  if drift < 0 || drift > Promise_analog.Swing.max_code then
    E.fail ~layer ~code:E.Invalid_operand
      ~context:[ ("drift", string_of_int drift) ]
      "swing drift out of range [0, 7]"
  else Ok { t with swing_drift = drift }

let with_leakage_mult t m =
  if not (Float.is_finite m && m >= 1.0) then
    E.fail ~layer ~code:E.Invalid_operand
      ~context:[ ("mult", string_of_float m) ]
      "leakage multiplier must be finite and >= 1"
  else Ok { t with leakage_mult = m }

(* [b] wins where the two conflict (stuck codes, flip parameters). *)
let compose a b =
  let dead_lanes = List.sort_uniq compare (a.dead_lanes @ b.dead_lanes) in
  let stuck =
    List.sort compare
      (List.filter
         (fun (lane, _) ->
           (not (List.mem_assoc lane b.stuck))
           && not (List.mem lane dead_lanes))
         a.stuck
      @ List.filter (fun (lane, _) -> not (List.mem lane dead_lanes)) b.stuck)
  in
  {
    stuck;
    dead_lanes;
    dead_bank = a.dead_bank || b.dead_bank;
    adc_offset = a.adc_offset +. b.adc_offset;
    dead_adc_units =
      min Promise_analog.Adc.units_per_bank
        (a.dead_adc_units + b.dead_adc_units);
    xreg_flip = (match b.xreg_flip with Some _ as f -> f | None -> a.xreg_flip);
    swing_drift =
      min Promise_analog.Swing.max_code (a.swing_drift + b.swing_drift);
    leakage_mult = a.leakage_mult *. b.leakage_mult;
  }

let stuck_lanes t = t.stuck
let dead_lanes t = t.dead_lanes
let is_dead_bank t = t.dead_bank
let adc_offset t = t.adc_offset
let dead_adc_units t = t.dead_adc_units
let xreg_flip t = t.xreg_flip
let swing_drift t = t.swing_drift
let leakage_mult t = t.leakage_mult

let faulty_lanes t =
  List.sort_uniq compare (t.dead_lanes @ List.map fst t.stuck)

let adc_units_available t =
  Promise_analog.Adc.units_per_bank - t.dead_adc_units

let effective_swing t ~swing = max 0 (swing - t.swing_drift)
let effective_idle_ns t ~idle_ns = idle_ns *. t.leakage_mult

let apply_stuck t values =
  if t.dead_bank then Array.make (Array.length values) 0.0
  else if t.stuck = [] && t.dead_lanes = [] then values
  else begin
    let out = Array.copy values in
    let n = Array.length out in
    List.iter
      (fun (lane, code) ->
        if lane < n then out.(lane) <- float_of_int code /. 128.0)
      t.stuck;
    List.iter (fun lane -> if lane < n then out.(lane) <- 0.0) t.dead_lanes;
    out
  end

(* Canonical textual form: every field printed, [of_string] inverts it
   exactly (%.17g round-trips any finite float). *)
let to_string t =
  let stuck =
    String.concat ","
      (List.map (fun (l, c) -> Printf.sprintf "%d:%d" l c) t.stuck)
  in
  let dead = String.concat "," (List.map string_of_int t.dead_lanes) in
  let flip =
    match t.xreg_flip with
    | None -> "none"
    | Some { seed; rate } -> Printf.sprintf "%d:%.17g" seed rate
  in
  Printf.sprintf
    "faults{stuck=%s;dead=%s;bank=%s;offset=%.17g;adc=%d;flip=%s;drift=%d;leak=%.17g}"
    stuck dead
    (if t.dead_bank then "dead" else "ok")
    t.adc_offset t.dead_adc_units flip t.swing_drift t.leakage_mult

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  let parse_error detail =
    E.fail ~layer ~code:E.Invalid_operand ~context:[ ("input", s) ]
      ("unparsable fault description: " ^ detail)
  in
  let prefix = "faults{" in
  let plen = String.length prefix in
  if
    String.length s < plen + 1
    || String.sub s 0 plen <> prefix
    || s.[String.length s - 1] <> '}'
  then parse_error "expected faults{...}"
  else
    let body = String.sub s plen (String.length s - plen - 1) in
    let fields = String.split_on_char ';' body in
    let lookup key =
      let p = key ^ "=" in
      match
        List.find_opt
          (fun f ->
            String.length f >= String.length p
            && String.sub f 0 (String.length p) = p)
          fields
      with
      | Some f ->
          Some (String.sub f (String.length p) (String.length f - String.length p))
      | None -> None
    in
    let req key k =
      match lookup key with
      | Some v -> k v
      | None -> parse_error ("missing field " ^ key)
    in
    try
      req "stuck" @@ fun stuck_s ->
      req "dead" @@ fun dead_s ->
      req "bank" @@ fun bank_s ->
      req "offset" @@ fun offset_s ->
      req "adc" @@ fun adc_s ->
      req "flip" @@ fun flip_s ->
      req "drift" @@ fun drift_s ->
      req "leak" @@ fun leak_s ->
      let split_nonempty s =
        if s = "" then [] else String.split_on_char ',' s
      in
      let pair s =
        match String.split_on_char ':' s with
        | [ a; b ] -> (a, b)
        | _ -> failwith "pair"
      in
      let stuck =
        List.map
          (fun e ->
            let l, c = pair e in
            (int_of_string l, int_of_string c))
          (split_nonempty stuck_s)
      in
      let dead = List.map int_of_string (split_nonempty dead_s) in
      let xreg_flip =
        if flip_s = "none" then None
        else
          let s, r = pair flip_s in
          Some { seed = int_of_string s; rate = float_of_string r }
      in
      Ok
        {
          stuck = List.sort compare stuck;
          dead_lanes = List.sort_uniq compare dead;
          dead_bank = bank_s = "dead";
          adc_offset = float_of_string offset_s;
          dead_adc_units = int_of_string adc_s;
          xreg_flip;
          swing_drift = int_of_string drift_s;
          leakage_mult = float_of_string leak_s;
        }
    with Failure msg -> parse_error msg
