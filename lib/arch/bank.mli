(** One PROMISE bank: the analog portion of the pipeline, S1 (aREAD) →
    S2 (aSD) → S3 (aVD) → ADC (paper Fig. 3).

    A bank executes a Task one iteration at a time. The machine layer
    (Machine) sequences iterations, combines per-bank partials over the
    cross-bank rail and drives the TH unit.

    Analog gain staging: fused Class-1 add/subtract halves values and a
    Class-2 square squares that, so every analog node stays in [-1, 1];
    {!analog_scale} reports the factor the digital domain must multiply
    back (TH pre-gain). *)

type profile =
  | Ideal
  | Silicon
  | Custom of { lut : bool; leakage : bool }
      (** enable the deterministic error sources individually (the
          error-source ablation of the report) *)
(** [Ideal] — identity transfer curves, no leakage (functional
    validation, paper §5 "architecture-level"). [Silicon] — the LUT
    non-idealities and capacitor droop models ([Custom] with both). *)

type t

val create : ?profile:profile -> noise:Promise_analog.Noise.t -> unit -> t

val array : t -> Bitcell_array.t
val xreg : t -> Xreg.t
val profile : t -> profile

(** [noise t] — the bank's aREAD noise source (its private split RNG
    stream). The fused kernels ({!Kernel}) draw from it directly with
    pre-computed sigmas; sharing the object keeps the draw sequence
    identical to the scalar path's. *)
val noise : t -> Promise_analog.Noise.t

(** [transient_rng t] — the X-REG transient-upset stream seeded by
    {!set_faults} ([None] when no flip fault is injected). Exposed for
    {!Kernel}, which must consume the same stream in the same order as
    the scalar path. *)
val transient_rng : t -> Promise_analog.Rng.t option

(** [set_faults t f] — inject hard faults ({!Faults}): stuck/dead lanes
    corrupt every analog read, a dead bank zeroes both read paths, the
    ADC offset shifts every conversion, swing drift degrades the
    effective SWING code, the leakage multiplier scales idle-slot
    droop, and the X-REG transient model (seeded from the descriptor)
    flips bits on X reads. *)
val set_faults : t -> Faults.t -> unit

val faults : t -> Faults.t

(** [set_write_data t codes] — stage digital data for a Class-1 [write]. *)
val set_write_data : t -> int array -> unit

(** [stage_write_code t code] — append one 8-bit code into the write
    data buffer (the [DES = 11] Class-4 destination, paper Fig. 5(b));
    the next Class-1 [write] consumes the buffered lanes. *)
val stage_write_code : t -> int -> unit

(** [staged_write_count t]. *)
val staged_write_count : t -> int

(** The result of one iteration's analog chain. *)
type step =
  | Sample of float
      (** aVD mean over active lanes, digitized (the per-bank partial). *)
  | Digital_vector of int array
      (** digital read, or per-lane ADC when no aggregation. *)
  | Analog_vector of float array
      (** analog result left undigitized (no Class-3 ADC). *)
  | Idle  (** Class-1 none, or a write. *)

(** [analog_scale task] — true value = [analog_scale] × analog value. *)
val analog_scale : Promise_isa.Task.t -> float

(** [lut_for_profile profile select] — the transfer curve a profile
    applies: identity for [Ideal] / [Custom {lut = false}], [select ()]
    (a Silicon LUT) otherwise. Shared with {!Kernel} so both paths
    select curves by the same rule. *)
val lut_for_profile :
  profile -> (unit -> Promise_analog.Lut.t) -> Promise_analog.Lut.t

(** [run_iteration ?lane_mask t ~task ~iteration ~active_lanes ~adc_gain]
    — execute iteration [iteration] (0-based) of [task]:
    - W word-row address is [w_addr + iteration] (sequential increment,
      §3.3), wrapped modulo the array size;
    - X addresses circulate modulo [X_PRD + 1];
    - idle-slot leakage is applied in the [Silicon] profile using the
      task's TP;
    - [adc_gain] is the power-of-two analog range-matching gain ahead of
      the ADC (the sub-ranged read's range matching, see DESIGN.md): the
      aggregate is amplified by it before quantization and divided back
      after, so quantization noise shrinks by the same factor;
    - [lane_mask] (lane sparing, see {!Layout.spare_map}) restricts the
      charge-share average to the masked physical lanes instead of the
      [active_lanes]-long prefix.
    Raises [Invalid_argument] if [active_lanes] is not in [1, 128]. *)
val run_iteration :
  ?lane_mask:bool array ->
  t ->
  task:Promise_isa.Task.t ->
  iteration:int ->
  active_lanes:int ->
  adc_gain:float ->
  step

(** [w_row_of t ~task ~iteration] — the word row the iteration touches. *)
val w_row_of : task:Promise_isa.Task.t -> iteration:int -> int
