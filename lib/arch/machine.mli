(** The multi-bank PROMISE machine (paper Fig. 2(b)).

    Banks are grouped in units of [2^MULTI_BANK] for task execution; a
    [launch] names the group, the per-bank active lane count and the TH
    configuration the host runtime computed (paper §4.3: OP_PARAM /
    RPT_NUM / MULTI_BANK are computed on the host before Task launch). *)

type config = {
  banks : int;  (** total banks in the machine (1..64) *)
  profile : Bank.profile;
  noise_seed : int option;  (** [None] — ideal, noise-free *)
}

val default_config : config
(** 4 banks, [Silicon] profile, seed 42. *)

val ideal_config : banks:int -> config
(** Ideal profile, no noise: functional validation mode. *)

type t

(** How {!execute} runs the per-bank iteration chain.

    [Fused] (the default) compiles one {!Kernel} per bank of the group
    — a single fused pass with the swing/noise/LUT/leakage/fault
    constants hoisted out of the loop and pre-sampled per 8-bit code,
    running into preallocated scratch (no steady-state allocations) —
    and caches it on the machine, revalidating per execute.
    [Reference] is the original scalar path ({!Bank.run_iteration}).
    The two are bit-identical on every task, profile, fault set and
    lane mask (the differential QCheck suite enforces it); [Reference]
    exists as the oracle for that suite and for debugging. *)
type kernel_mode = Fused | Reference

(** The session default: [Reference] when the [PROMISE_KERNEL_MODE]
    environment variable is ["reference"] (or ["ref"]/["scalar"]),
    [Fused] otherwise. Read once, lazily. *)
val default_kernel_mode : unit -> kernel_mode

val create : config -> t
val config : t -> config
val n_banks : t -> int
val bank : t -> int -> Bank.t
val trace : t -> Trace.t
val reset_trace : t -> unit

(** A Task launch descriptor, produced by the compiler runtime. *)
type launch = {
  task : Promise_isa.Task.t;
  bank_group : int;  (** which group of [2^multi_bank] banks *)
  active_lanes : int;  (** per bank *)
  adc_gain : float;  (** ADC range-matching gain, a power of two ≥ 1 *)
  th : Th_unit.config;
  dest_xreg : int;  (** destination X-REG index for [Des_xreg] emits *)
}

(** Results of one Task execution. *)
type result = {
  emitted : float list;  (** output-buffer emissions, oldest first *)
  acc_out : float list;  (** emissions routed to the accumulator input *)
  xreg_out : float list;
      (** values staged into X-REG (after their 8-bit quantization) *)
  write_buffer : int list;
      (** codes staged into the write data buffer (DES = 11); a
          following Class-1 [write] Task stores them into the array *)
  argext : (int * float) option;  (** max/min decision (group index, value) *)
  digital : int array list;  (** digital read results *)
  record : Trace.task_record;
}

(** [execute ?lane_mask ?pool t launch] — run every iteration of the
    task, combine bank partials over the cross-bank rail, drive TH,
    route destinations, and append a record to the trace. [lane_mask]
    (lane sparing, {!Layout.lane_mask_of_map}) restricts charge sharing
    to the masked physical lanes. [pool] (default
    {!Promise_core.Pool.sequential}) fans the banks of a multi-bank
    group out across domains, bank-major; because every bank draws from
    its own split RNG stream and X-REG/write-buffer destinations stay
    on the sequential path, results are bit-identical at any job count.
    [kernel_mode] (default {!default_kernel_mode}) selects the fused
    compiled-kernel datapath or the scalar reference path — also
    bit-identical by contract. [Error] (typed, layer ["machine"]) when
    the task fails validation, the bank group exceeds the machine, or
    every ADC unit of the group is dead. *)
val execute :
  ?lane_mask:bool array ->
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:kernel_mode ->
  t ->
  launch ->
  (result, Promise_core.Error.t) Stdlib.result

(** [execute_exn ?lane_mask ?pool ?kernel_mode t launch] — {!execute},
    raising [Invalid_argument] with the rendered error (assembler-level
    paths and tests). *)
val execute_exn :
  ?lane_mask:bool array ->
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:kernel_mode ->
  t ->
  launch ->
  result

(** [run ?pool ?kernel_mode t launches] — execute in order; stops at
    the first error. *)
val run :
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:kernel_mode ->
  t ->
  launch list ->
  (result list, Promise_core.Error.t) Stdlib.result

(** [default_launch task] — a launch with ISA-level defaults for raw
    (assembler-driven) execution: bank group 0, all 128 lanes, unit ADC
    gain, TH pre-gain = 128 × the task's analog scale (so emitted
    values are sums in normalized units), grouping/threshold/destination
    from OP_PARAM. *)
val default_launch : Promise_isa.Task.t -> launch

(** [run_program ?pool t program] — execute a raw ISA program with
    {!default_launch} semantics (the [promise-asm] path: no compiler
    metadata needed); stops at the first error. *)
val run_program :
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:kernel_mode ->
  t ->
  Promise_isa.Program.t ->
  (result list, Promise_core.Error.t) Stdlib.result

(** {2 Batched execution}

    The batch engine runs N decisions of one launch in a single pass:
    each bank of the group samples its whole batch through
    {!Kernel.sample_batch_into} into a bank-major structure-of-arrays
    plane (noise for the whole batch drawn in one
    {!Promise_analog.Rng.gaussian_fill_ba} per tile), then the
    cross-bank rail and TH reduce the plane decision by decision.
    Bit-identity contract: for every launch and every [batch], the
    results — values, RNG stream states, per-decision trace records —
    are exactly those of [batch] back-to-back {!execute} calls. The
    differential QCheck suite (test_batch) enforces this against both
    the fused and the scalar [Reference] paths. *)

(** The session's default batch width: [PROMISE_BATCH] when it parses
    as an integer in [1, 4096], else 1. Read once, lazily. The variable
    feeds CLI and benchmark defaults only — plain {!execute}/compiler
    runs never batch implicitly, so accuracy results are independent of
    it. [Promise.check_env] validates it loudly at startup. *)
val default_batch : unit -> int

(** [execute_batch ?lane_mask ?pool ?kernel_mode t launch ~batch] — run
    [batch] decisions of [launch], returning one {!result} per decision
    (index = decision order). Decisions whose launch shape supports it
    (fused kernels on every bank, output-buffer/ACC destination,
    [iterations > 0]) take the batched fast path; anything else —
    including [`Reference`] mode, which is the differential oracle —
    falls back to [batch] sequential {!execute} calls, so the call is
    total over every launch {!execute} accepts. [pool] fans the banks
    of the group out bank-major with one synchronization per batch.
    [Error] with [Invalid_operand] when [batch < 1], otherwise exactly
    {!execute}'s errors. *)
val execute_batch :
  ?lane_mask:bool array ->
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:kernel_mode ->
  t ->
  launch ->
  batch:int ->
  (result array, Promise_core.Error.t) Stdlib.result

(** [emissions_per_decision task ~th] — how many values one decision
    emits on the batched serving path: one per TH group (final partial
    group included), or exactly one for max/min. *)
val emissions_per_decision : Promise_isa.Task.t -> th:Th_unit.config -> int

(** [execute_batch_into ?lane_mask ?pool ?kernel_mode t launch ~batch
    ~out] — the zero-allocation serving variant: emitted values land in
    [out.{d * epd + g}] (decision [d], emission [g], with [epd] the
    returned {!emissions_per_decision}), and the steady-state
    per-decision work allocates nothing on the minor heap (the Gc
    property in test_batch asserts 0 minor words per task; the
    [C4_sigmoid]/[C4_relu] ops box one float per TH group). Emitted
    values are bitwise those {!execute}'s [emitted]/[acc_out] would
    carry. Appends ONE trace record for the whole batch with the
    pipelined timing model: the analog pipeline never drains between
    same-shape decisions, so cycles = task_cycles + (batch − 1) ×
    iterations × TP, plus per-decision degraded-ADC stalls
    ({!Scheduler.run_batch} validates the closed form). Requires the
    batched fast path ([Unsupported] otherwise) and
    [Bigarray.Array1.dim out >= batch * epd]. *)
val execute_batch_into :
  ?lane_mask:bool array ->
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:kernel_mode ->
  t ->
  launch ->
  batch:int ->
  out:Promise_analog.Rng.ba ->
  (int, Promise_core.Error.t) Stdlib.result

(** [run_program_batch ?pool ?kernel_mode t program ~batch] — [batch]
    decisions of a raw ISA program with {!default_launch} semantics;
    element [d] holds decision [d]'s per-task results. Single-task
    programs ride {!execute_batch}; multi-task programs (which may feed
    bank state forward between tasks) replay sequentially. Bit-identical
    to [batch] successive {!run_program} calls either way. *)
val run_program_batch :
  ?pool:Promise_core.Pool.t ->
  ?kernel_mode:kernel_mode ->
  t ->
  Promise_isa.Program.t ->
  batch:int ->
  (result list array, Promise_core.Error.t) Stdlib.result

(** {2 Test hooks} *)

module For_tests : sig
  (** [(hits, misses)] of the degraded-ADC stall memo: the
      discrete-event {!Scheduler} pair behind the excess-stall
      accounting is keyed on (stage delays × iterations × available
      units) and cached process-wide. *)
  val stall_memo_stats : unit -> int * int

  val reset_stall_memo : unit -> unit
end

(** {2 Data staging} *)

(** [load_weights ?lane_map t ~group ~base ~plan w] — place row-chunk
    matrix [w] (rows × vector_len 8-bit codes) into the banks of
    [group] starting at word row [base], per [plan]'s slicing.
    [lane_map] ({!Layout.spare_map}) scatters logical lane [l] of each
    slice to physical lane [lane_map.(l)] (lane sparing). *)
val load_weights :
  ?lane_map:int array ->
  t ->
  group:int ->
  base:int ->
  plan:Layout.plan ->
  int array array ->
  unit

(** [load_x ?lane_map t ~group ~xreg_base ~plan x] — broadcast the input
    vector's per-bank, per-segment slices into X-REG entries
    [xreg_base .. xreg_base + segments - 1] of each bank in [group],
    scattered through [lane_map] when present. *)
val load_x :
  ?lane_map:int array ->
  t ->
  group:int ->
  xreg_base:int ->
  plan:Layout.plan ->
  int array ->
  unit

(** [read_xreg t ~bank ~xreg] — one bank's view of an X-REG vector
    (Class-4 [Des_xreg] emits broadcast to every bank of the group, so
    the group's first bank is canonical). *)
val read_xreg : t -> bank:int -> xreg:int -> int array
