type task_record = {
  task : Promise_isa.Task.t;
  iterations : int;
  banks : int;
  tp : int;
  fill_cycles : int;
  cycles : int;
  adc_conversions : int;
  crossbank_transfers : int;
  th_ops : int;
  stall_cycles : int;
}

type t = { mutable records : task_record list; mutable total_cycles : int }

let create () = { records = []; total_cycles = 0 }

let record t r =
  t.records <- r :: t.records;
  t.total_cycles <- t.total_cycles + r.cycles

let records_in_order t = List.rev t.records
let total_cycles t = t.total_cycles

let sum f t = List.fold_left (fun acc r -> acc + f r) 0 t.records

let total_task_iterations t = sum (fun r -> r.iterations) t
let total_adc_conversions t = sum (fun r -> r.adc_conversions * r.banks) t
let elapsed_ns t = float_of_int t.total_cycles *. Params.cycle_ns

let pp ppf t =
  Format.fprintf ppf "@[<v>trace: %d tasks, %d cycles@,"
    (List.length t.records) t.total_cycles;
  List.iteri
    (fun i r ->
      Format.fprintf ppf "  [%d] %s iters=%d banks=%d tp=%d cycles=%d@," i
        (Promise_isa.Opcode.class1_name r.task.Promise_isa.Task.class1)
        r.iterations r.banks r.tp r.cycles)
    (records_in_order t);
  Format.fprintf ppf "@]"

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "class1,class2,class4,swing,iterations,banks,tp,fill,cycles,adc,rail,th,stalls\n";
  List.iter
    (fun r ->
      let task = r.task in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n"
           (Promise_isa.Opcode.class1_name task.Promise_isa.Task.class1)
           (Promise_isa.Opcode.asd_name
              task.Promise_isa.Task.class2.Promise_isa.Opcode.asd)
           (Promise_isa.Opcode.class4_name task.Promise_isa.Task.class4)
           task.Promise_isa.Task.op_param.Promise_isa.Op_param.swing
           r.iterations r.banks r.tp r.fill_cycles r.cycles r.adc_conversions
           r.crossbank_transfers r.th_ops r.stall_cycles))
    (records_in_order t);
  Buffer.contents buf
