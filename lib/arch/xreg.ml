type t = { vectors : int array array; staged : int array }

let create () =
  {
    vectors = Array.make_matrix Params.xreg_depth Params.lanes 0;
    staged = Array.make Params.xreg_depth 0;
  }

let check_index index =
  if index < 0 || index >= Params.xreg_depth then
    invalid_arg
      (Printf.sprintf "Xreg: index %d out of range [0, %d)" index
         Params.xreg_depth)

let check_code code =
  if code < -128 || code > 127 then
    invalid_arg (Printf.sprintf "Xreg: code %d not 8-bit" code)

let load t ~index codes =
  check_index index;
  if Array.length codes > Params.lanes then
    invalid_arg "Xreg.load: more than 128 lanes";
  Array.iter check_code codes;
  let v = t.vectors.(index) in
  Array.fill v 0 Params.lanes 0;
  Array.blit codes 0 v 0 (Array.length codes);
  t.staged.(index) <- 0

let get t ~index =
  check_index index;
  Array.copy t.vectors.(index)

let row_unsafe t ~index =
  check_index index;
  t.vectors.(index)

let get_normalized t ~index =
  check_index index;
  Array.map (fun c -> float_of_int c /. 128.0) t.vectors.(index)

let stage_element t ~index code =
  check_index index;
  check_code code;
  let lane = t.staged.(index) mod Params.lanes in
  t.vectors.(index).(lane) <- code;
  t.staged.(index) <- t.staged.(index) + 1

let staged_count t ~index =
  check_index index;
  t.staged.(index)

let reset_staging t ~index =
  check_index index;
  t.staged.(index) <- 0
