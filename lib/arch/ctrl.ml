open Promise_isa

type signal =
  | Precharge
  | Wl_pwm of { bits : int }
  | X_drive
  | Sd_enable of Opcode.asd
  | Avd_share
  | Adc_start
  | Th_strobe of Opcode.class4
  | Write_enable
  | Read_enable

let pp_signal ppf = function
  | Precharge -> Format.pp_print_string ppf "precharge"
  | Wl_pwm { bits } -> Format.fprintf ppf "wl_pwm[%d]" bits
  | X_drive -> Format.pp_print_string ppf "x_drive"
  | Sd_enable asd -> Format.fprintf ppf "sd_%s" (Opcode.asd_name asd)
  | Avd_share -> Format.pp_print_string ppf "avd_share"
  | Adc_start -> Format.pp_print_string ppf "adc_start"
  | Th_strobe op -> Format.fprintf ppf "th_%s" (Opcode.class4_name op)
  | Write_enable -> Format.pp_print_string ppf "write_en"
  | Read_enable -> Format.pp_print_string ppf "read_en"

let equal_signal a b = a = b

type step = { cycle : int; duration : int; signal : signal }

(* Class-1 stage budget (Table 3): one precharge cycle, then the PWM
   word-line burst (plus X drive for the fused ops) filling the rest. *)
let class1_steps (task : Task.t) =
  let delay = Timing.class1_delay task.Task.class1 in
  match task.Task.class1 with
  | Opcode.C1_none -> []
  | Opcode.C1_write -> [ { cycle = 0; duration = delay; signal = Write_enable } ]
  | Opcode.C1_read -> [ { cycle = 0; duration = delay; signal = Read_enable } ]
  | Opcode.C1_aread ->
      [
        { cycle = 0; duration = 1; signal = Precharge };
        { cycle = 1; duration = delay - 1; signal = Wl_pwm { bits = Params.word_bits } };
      ]
  | Opcode.C1_asubt | Opcode.C1_aadd ->
      [
        { cycle = 0; duration = 1; signal = Precharge };
        { cycle = 1; duration = delay - 1; signal = Wl_pwm { bits = Params.word_bits } };
        { cycle = 1; duration = delay - 1; signal = X_drive };
      ]

let steps (task : Task.t) =
  let c1 = class1_steps task in
  let after_c1 = Timing.class1_delay task.Task.class1 in
  let asd = task.Task.class2.Opcode.asd in
  let c2 =
    if Opcode.equal_asd asd Opcode.Asd_none then []
    else
      [
        {
          cycle = after_c1;
          duration = Timing.class2_delay task.Task.class2;
          signal = Sd_enable asd;
        };
      ]
  in
  let after_c2 = after_c1 + Timing.class2_delay task.Task.class2 in
  let avd =
    if task.Task.class2.Opcode.avd then
      [ { cycle = after_c2 - 1; duration = 1; signal = Avd_share } ]
    else []
  in
  let adc =
    if Task.uses_adc task then
      [ { cycle = after_c2; duration = 1; signal = Adc_start } ]
    else []
  in
  let after_adc = after_c2 + Timing.class3_latency task.Task.class3 in
  (* the TH stage occupies its pipeline slot whether or not a fresh
     ADC sample arrived (the stage budget of Timing.fill_cycles) *)
  let th =
    [
      {
        cycle = after_adc;
        duration = Timing.class4_delay task.Task.class4;
        signal = Th_strobe task.Task.class4;
      };
    ]
  in
  c1 @ c2 @ avd @ adc @ th

let iteration_schedule task =
  match Task.validate task with
  | Ok task -> steps task
  | Error d ->
      invalid_arg ("Ctrl.iteration_schedule: " ^ Promise_core.Diag.render d)

let last_cycle steps =
  List.fold_left (fun acc s -> max acc (s.cycle + s.duration)) 0 steps

let signal_counts task =
  let schedule = iteration_schedule task in
  let iterations = Task.iterations task in
  List.map (fun s -> (s.signal, iterations)) schedule
