(** Built-in self-test (BIST): fault detection and localization.

    [run] drives each bank of a machine through a battery of diagnostic
    Tasks with known weights — per-lane ramp reads, zero-weight ADC
    canaries, multi-iteration stall probes, X-REG echo reads — and
    classifies the deviations into a localized {!report}: which bank,
    which lane or ADC, and what kind of fault. The probes only use the
    architectural interface ({!Machine.execute} and data staging); they
    never peek at the injected {!Faults} descriptors, so the test suite
    can validate the report against the injection ground truth.

    The test is {e destructive}: it overwrites the first few word rows
    and X-REG entry 0 of every bank. Run it before loading a workload
    (or reload afterwards). *)

type kind =
  | Stuck_lane of { lane : int; code : int }
      (** the lane reads [code] regardless of the stored weight *)
  | Dead_lane of { lane : int }
      (** the lane reads 0 (stuck-at-zero is reported as dead) *)
  | Dead_bank  (** both analog and digital read paths return zeros *)
  | Adc_offset of { offset : float }
      (** estimated conversion offset, normalized units *)
  | Dead_adc of { stall_cycles : int }
      (** the bank stalls waiting for ADC units; [max_int] when no
          conversion completes at all (every unit dead) *)
  | Xreg_transient of { events : int; trials : int }
      (** X-REG echo reads showed [events] outliers in [trials]
          iterations — transient bit upsets *)
  | Swing_degraded of { measured_sigma : float; expected_sigma : float }
      (** read-noise sigma well above the programmed-swing expectation
          (bit-line swing drift / aging) *)
  | Excess_leakage of { ratio : float }
      (** idle-slot droop probe: measured/nominal signal ratio *)

type finding = { bank : int; kind : kind }

type report = { findings : finding list; banks_tested : int }

val kind_name : kind -> string
(** Short tag: ["stuck-lane"], ["dead-adc"], ... *)

val pp_finding : Format.formatter -> finding -> unit
val pp : Format.formatter -> report -> unit

val findings_for : report -> bank:int -> kind list

(** [run ?trials m] — test every bank; [trials] (default 32) sets the
    repetition count of the statistical probes (transients, noise
    sigma). Noise-dependent probes are skipped when the machine is
    noiseless, and the leakage probe when the profile disables leakage.
    Errors from the machine layer (other than the all-ADC-dead case,
    which becomes a finding) propagate. *)
val run : ?trials:int -> Machine.t -> (report, Promise_core.Error.t) result
