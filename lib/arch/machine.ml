open Promise_isa
module A = Promise_analog
module E = Promise_core.Error
module Pool = Promise_core.Pool

type config = {
  banks : int;
  profile : Bank.profile;
  noise_seed : int option;
}

let default_config = { banks = 4; profile = Bank.Silicon; noise_seed = Some 42 }
let ideal_config ~banks = { banks; profile = Bank.Ideal; noise_seed = None }

type t = {
  config : config;
  banks : Bank.t array;
  trace : Trace.t;
  (* one slot per bank: the last kernel specialized for it, revalidated
     by [Kernel.matches] on every execute (replay workloads re-launch
     the same task, so specialization amortizes to zero) *)
  kernel_cache : Kernel.t option array;
  (* batch execution scratch: the per-bank sample plane (grown once,
     reused) and a tiny float-array slot set the zero-allocation
     reduction loops accumulate in (a [float ref] would box per
     store) *)
  mutable bplane : A.Rng.ba;
  bacc : float array;
}

type kernel_mode = Fused | Reference

let env_kernel_mode =
  lazy
    (match Sys.getenv_opt "PROMISE_KERNEL_MODE" with
    | None -> Fused
    | Some s -> (
        match String.lowercase_ascii (String.trim s) with
        | "reference" | "ref" | "scalar" -> Reference
        | _ -> Fused))

let default_kernel_mode () = Lazy.force env_kernel_mode

(* PROMISE_BATCH feeds CLI/benchmark defaults only — it never changes
   what [execute] or the compiler runtime does for a plain call, so a
   run at PROMISE_BATCH=16 reproduces the batch=1 numbers wherever the
   caller didn't opt in. [Promise.check_env] validates the variable
   loudly at CLI startup; this lazy parse falls back to 1 on anything
   invalid rather than raising from deep inside the machine. *)
let env_batch =
  lazy
    (match
       Promise_core.Validate.env_int ~name:"PROMISE_BATCH" ~min:1 ~max:4096
     with
    | Ok (Some n) -> n
    | Ok None | Error _ -> 1)

let default_batch () = Lazy.force env_batch

let create (config : config) =
  if config.banks < 1 || config.banks > 64 then
    invalid_arg "Machine.create: banks must be in [1, 64]";
  let root_rng = A.Rng.create (Option.value config.noise_seed ~default:0) in
  (* one split stream per bank, in ascending bank order: bank [i]'s
     noise draws depend only on (seed, i), never on how the other
     banks are stepped — the invariant parallel execution relies on *)
  let streams = A.Rng.split_n root_rng config.banks in
  let make_bank i =
    let noise =
      match config.noise_seed with
      | None -> A.Noise.disabled
      | Some _ -> A.Noise.create ~rng:streams.(i) ()
    in
    Bank.create ~profile:config.profile ~noise ()
  in
  {
    config;
    banks = Array.init config.banks make_bank;
    trace = Trace.create ();
    kernel_cache = Array.make config.banks None;
    bplane = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 0;
    bacc = Array.make 4 0.0;
  }

let config t = t.config
let n_banks t = Array.length t.banks

let bank t i =
  if i < 0 || i >= n_banks t then invalid_arg "Machine.bank: index out of range";
  t.banks.(i)

let trace t = t.trace
let reset_trace t =
  t.trace.Trace.records <- [];
  t.trace.Trace.total_cycles <- 0

type launch = {
  task : Task.t;
  bank_group : int;
  active_lanes : int;
  adc_gain : float;
  th : Th_unit.config;
  dest_xreg : int;
}

type result = {
  emitted : float list;
  acc_out : float list;
  xreg_out : float list;
  write_buffer : int list;
  argext : (int * float) option;
  digital : int array list;
  record : Trace.task_record;
}

let group_banks t launch =
  let n = Task.banks launch.task in
  let first = launch.bank_group * n in
  if launch.bank_group < 0 || first + n > n_banks t then
    E.fail ~layer:"machine" ~code:E.Capacity
      ~context:
        [
          ("group", string_of_int launch.bank_group);
          ("group_banks", string_of_int n);
          ("machine_banks", string_of_int (n_banks t));
        ]
      "bank group exceeds machine"
  else Ok (Array.init n (fun i -> t.banks.(first + i)))

let quantize_code = Promise_core.Quant.quantize8

let route_emit banks launch (emit : Th_unit.emit) ~emitted ~acc_out ~xreg_out
    ~wbuf =
  match emit.Th_unit.des with
  | Opcode.Des_output_buffer -> emitted := emit.Th_unit.value :: !emitted
  | Opcode.Des_acc -> acc_out := emit.Th_unit.value :: !acc_out
  | Opcode.Des_xreg ->
      let code = quantize_code emit.Th_unit.value in
      Array.iter
        (fun b -> Xreg.stage_element (Bank.xreg b) ~index:launch.dest_xreg code)
        banks;
      xreg_out := (float_of_int code /. 128.0) :: !xreg_out
  | Opcode.Des_write_buffer ->
      let code = quantize_code emit.Th_unit.value in
      Array.iter (fun b -> Bank.stage_write_code b code) banks;
      wbuf := code :: !wbuf

(* Excess pipeline stalls when some of the group's ADC units are dead:
   the discrete-event scheduler run with the reduced unit count, minus
   its healthy-baseline stalls. Zero-cost on a healthy group.

   The scheduler's output depends only on the task's stage delays
   (TP derives from d1/d2/d4 and [uses_adc] from d3), the iteration
   count, and the unit count — so the two simulation runs are memoized
   on exactly that shape. Degraded campaigns launch the same few task
   shapes thousands of times; the table stays tiny. *)
let stall_memo : (int * int * int * int * int * int, int) Hashtbl.t =
  Hashtbl.create 64

let stall_memo_mutex = Mutex.create ()
let stall_memo_hits = ref 0
let stall_memo_misses = ref 0

let excess_adc_stalls (task : Task.t) ~avail =
  if avail >= A.Adc.units_per_bank then 0
  else
    let key =
      ( Timing.class1_delay task.class1,
        Timing.class2_delay task.class2,
        Timing.class3_latency task.class3,
        Timing.class4_delay task.class4,
        Task.iterations task,
        avail )
    in
    Mutex.protect stall_memo_mutex (fun () ->
        match Hashtbl.find_opt stall_memo key with
        | Some excess ->
            incr stall_memo_hits;
            excess
        | None ->
            incr stall_memo_misses;
            let stalls units =
              (Scheduler.run ~ideal_adc:false ~adc_units:units task)
                .Scheduler.adc_stalls
            in
            let excess = max 0 (stalls avail - stalls A.Adc.units_per_bank) in
            Hashtbl.add stall_memo key excess;
            excess)

module For_tests = struct
  let stall_memo_stats () =
    Mutex.protect stall_memo_mutex (fun () ->
        (!stall_memo_hits, !stall_memo_misses))

  let reset_stall_memo () =
    Mutex.protect stall_memo_mutex (fun () ->
        Hashtbl.reset stall_memo;
        stall_memo_hits := 0;
        stall_memo_misses := 0)
end

(* A multi-bank task may fan its banks out across a pool only when the
   emit destination never feeds back into bank state mid-task: X-REG
   and write-buffer emits are staged into the banks while iterations
   are still running, so those tasks stay on the sequential path. The
   same property gates the batched fast path — it is what makes the
   per-bank sample stream independent of decision order. *)
let cross_bank_safe launch =
  match launch.th.Th_unit.des with
  | Opcode.Des_output_buffer | Opcode.Des_acc -> true
  | Opcode.Des_xreg | Opcode.Des_write_buffer -> false

(* One compiled kernel per bank of the group, revalidated against the
   per-bank cache (same bank + task + launch shape + faults → reuse, so
   replay workloads pay specialization once). *)
let cached_kernels ?lane_mask t launch banks =
  let task = launch.task in
  let first = launch.bank_group * Task.banks task in
  Array.mapi
    (fun bi b ->
      let slot = first + bi in
      match t.kernel_cache.(slot) with
      | Some k
        when Kernel.matches k b ~task ~active_lanes:launch.active_lanes
               ~adc_gain:launch.adc_gain ~lane_mask ->
          k
      | Some _ | None ->
          let k =
            Kernel.specialize ?lane_mask b ~task
              ~active_lanes:launch.active_lanes ~adc_gain:launch.adc_gain
          in
          t.kernel_cache.(slot) <- Some k;
          k)
    banks

(* The [machine.execute] failpoint is consulted before any bank state
   or RNG draw is touched — same contract as the real Fault-coded
   checks (e.g. all-ADC-dead) — so a caller that retries after an
   injected fault sees the machine exactly as if the faulted call
   never happened. *)
let injected_fault launch =
  match Promise_core.Failpoint.check "machine.execute" with
  | Some Promise_core.Failpoint.Fail ->
      E.fail ~layer:"machine" ~code:E.Fault
        ~context:
          [ ("group", string_of_int launch.bank_group); ("injected", "true") ]
        "injected analog fault"
  | Some (Promise_core.Failpoint.Delay ns) ->
      Promise_core.Clock.sleep_ms (Int64.to_float ns /. 1e6);
      Ok ()
  | Some Promise_core.Failpoint.Interrupt | None -> Ok ()

let execute ?lane_mask ?(pool = Pool.sequential) ?kernel_mode t launch =
  let ( let* ) = Result.bind in
  let task = launch.task in
  let kernel_mode =
    match kernel_mode with Some m -> m | None -> default_kernel_mode ()
  in
  let* () = injected_fault launch in
  let* () =
    match Task.validate task with
    | Ok _ -> Ok ()
    | Error d -> Error (Promise_core.Diag.to_error ~layer:"machine" d)
  in
  let* banks = group_banks t launch in
  let* avail_adc =
    let avail =
      Array.fold_left
        (fun acc b -> min acc (Faults.adc_units_available (Bank.faults b)))
        A.Adc.units_per_bank banks
    in
    if Task.uses_adc task && avail < 1 then
      E.fail ~layer:"machine" ~code:E.Fault
        ~context:[ ("group", string_of_int launch.bank_group) ]
        "all ADC units of the bank group are dead"
    else Ok avail
  in
  let n_banks_used = Array.length banks in
  let th = Th_unit.create launch.th in
  let emitted = ref [] and acc_out = ref [] and wbuf = ref [] in
  let xreg_out = ref [] in
  let digital = ref [] in
  let adc_conversions = ref 0 in
  let iterations = Task.iterations task in
  let kernels =
    match kernel_mode with
    | Reference -> None
    | Fused -> Some (cached_kernels ?lane_mask t launch banks)
  in
  let step_bank bi b ~iteration =
    match kernels with
    | Some ks -> Kernel.step ks.(bi) ~iteration
    | None ->
        Bank.run_iteration ?lane_mask b ~task ~iteration
          ~active_lanes:launch.active_lanes ~adc_gain:launch.adc_gain
  in
  (* Parallel path: each bank runs all of its iterations on one domain
     (bank-major), which preserves the bank's private RNG draw order
     exactly as the sequential iteration-major loop would — banks never
     read each other's state, so the precomputed steps are bit-identical
     and the sequential replay below reduces them in canonical order. *)
  let precomputed =
    if
      Pool.is_parallel pool && n_banks_used > 1 && iterations > 0
      && cross_bank_safe launch
    then
      Some
        (Pool.map_array pool
           (fun bi ->
             let b = banks.(bi) in
             let steps = Array.make iterations Bank.Idle in
             for iteration = 0 to iterations - 1 do
               steps.(iteration) <- step_bank bi b ~iteration
             done;
             steps)
           (Array.init n_banks_used (fun i -> i)))
    else None
  in
  (match (precomputed, kernels) with
  | None, Some ks when Array.for_all Kernel.is_fused ks ->
      (* fused fast loop: the task shape guarantees every bank yields a
         Sample every iteration, so the per-iteration scaffolding of the
         general loop (fresh partials array, step dispatch, sample
         detection) collapses to kernel calls into one hoisted buffer *)
      let partials = Array.make n_banks_used 0.0 in
      for iteration = 0 to iterations - 1 do
        for bi = 0 to n_banks_used - 1 do
          Kernel.sample_into ks.(bi) ~iteration ~dst:partials ~at:bi
        done;
        adc_conversions := !adc_conversions + n_banks_used;
        let combined = Crossbank.combine partials in
        match Th_unit.push th combined with
        | Some emit ->
            route_emit banks launch emit ~emitted ~acc_out ~xreg_out ~wbuf
        | None -> ()
      done
  | _ ->
      for iteration = 0 to iterations - 1 do
        let partials = Array.make n_banks_used 0.0 in
        let got_sample = ref false in
        Array.iteri
          (fun bi b ->
            match
              match precomputed with
              | Some steps -> steps.(bi).(iteration)
              | None -> step_bank bi b ~iteration
            with
            | Bank.Sample s ->
                partials.(bi) <- s;
                got_sample := true;
                incr adc_conversions
            | Bank.Digital_vector v ->
                if bi = 0 then digital := v :: !digital;
                if Task.uses_adc task then
                  adc_conversions := !adc_conversions + launch.active_lanes
            | Bank.Analog_vector _ | Bank.Idle -> ())
          banks;
        if !got_sample then
          let combined = Crossbank.combine partials in
          match Th_unit.push th combined with
          | Some emit ->
              route_emit banks launch emit ~emitted ~acc_out ~xreg_out ~wbuf
          | None -> ()
      done);
  (match Th_unit.finish th with
  | Some emit -> route_emit banks launch emit ~emitted ~acc_out ~xreg_out ~wbuf
  | None -> ());
  let stall_cycles =
    if Task.uses_adc task then excess_adc_stalls task ~avail:avail_adc else 0
  in
  let record =
    {
      Trace.task = task;
      iterations;
      banks = n_banks_used;
      tp = Timing.task_tp task;
      fill_cycles = Timing.fill_cycles task;
      cycles = Timing.task_cycles task + stall_cycles;
      adc_conversions = !adc_conversions / max 1 n_banks_used;
      crossbank_transfers =
        Crossbank.transfers_per_iteration ~banks:n_banks_used * iterations;
      th_ops = Th_unit.ops_executed th;
      stall_cycles;
    }
  in
  Trace.record t.trace record;
  Ok
    {
      emitted = List.rev !emitted;
      acc_out = List.rev !acc_out;
      xreg_out = List.rev !xreg_out;
      write_buffer = List.rev !wbuf;
      argext = Th_unit.argext th;
      digital = List.rev !digital;
      record;
    }

let execute_exn ?lane_mask ?pool ?kernel_mode t launch =
  E.to_invalid_arg (execute ?lane_mask ?pool ?kernel_mode t launch)

let run ?pool ?kernel_mode t launches =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match execute ?pool ?kernel_mode t l with
        | Ok r -> go (r :: acc) rest
        | Error e -> Error e)
  in
  go [] launches

let default_launch (task : Task.t) =
  let p = task.Task.op_param in
  {
    task;
    bank_group = 0;
    active_lanes = Params.lanes;
    adc_gain = 1.0;
    th =
      {
        Th_unit.op = task.Task.class4;
        acc_num = p.Op_param.acc_num;
        threshold = (float_of_int p.Op_param.thres_val /. 7.5) -. 1.0;
        gain = float_of_int Params.lanes *. Bank.analog_scale task;
        des = p.Op_param.des;
      };
    dest_xreg = Params.xreg_depth - 1;
  }

let run_program ?pool ?kernel_mode t (program : Program.t) =
  run ?pool ?kernel_mode t (List.map default_launch program.Program.tasks)

(* ------------------------------------------------------------------ *)
(* Batched execution                                                    *)
(* ------------------------------------------------------------------ *)

let batch_plane t ~need =
  if Bigarray.Array1.dim t.bplane < need then
    t.bplane <- Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout need;
  t.bplane

let invalid_batch batch =
  E.fail ~layer:"machine" ~code:E.Invalid_operand
    ~context:[ ("batch", string_of_int batch) ]
    "batch must be >= 1"

(* Shared entry validation + fast-path eligibility for the batched
   APIs. [Ok (banks, avail_adc, Some kernels)] means the decision-major
   fast path applies: fused kernels on every bank of the group, an emit
   destination with no mid-task bank-state feedback, and at least one
   iteration. *)
let batch_setup ?lane_mask ?kernel_mode t launch =
  let ( let* ) = Result.bind in
  let task = launch.task in
  let kernel_mode =
    match kernel_mode with Some m -> m | None -> default_kernel_mode ()
  in
  let* () =
    match Task.validate task with
    | Ok _ -> Ok ()
    | Error d -> Error (Promise_core.Diag.to_error ~layer:"machine" d)
  in
  let* banks = group_banks t launch in
  let* avail_adc =
    let avail =
      Array.fold_left
        (fun acc b -> min acc (Faults.adc_units_available (Bank.faults b)))
        A.Adc.units_per_bank banks
    in
    if Task.uses_adc task && avail < 1 then
      E.fail ~layer:"machine" ~code:E.Fault
        ~context:[ ("group", string_of_int launch.bank_group) ]
        "all ADC units of the bank group are dead"
    else Ok avail
  in
  let kernels =
    match kernel_mode with
    | Reference -> None
    | Fused ->
        if cross_bank_safe launch && Task.iterations task > 0 then
          let ks = cached_kernels ?lane_mask t launch banks in
          if Array.for_all Kernel.is_fused ks then Some ks else None
        else None
  in
  Ok (banks, avail_adc, kernels)

(* Fill the bank-major sample plane: bank [bi]'s samples for the whole
   batch live at [bi*batch*iters + d*iters + i]. Bank-major order keeps
   each bank's private RNG streams consumed exactly as sequential
   execution would (banks never read each other's state), and lets a
   pool fan the banks out with one synchronization per batch instead of
   one per task. *)
let fill_batch_plane ~pool ~kernels ~(plane : A.Rng.ba) ~batch ~iters =
  let n = Array.length kernels in
  let per = batch * iters in
  if Pool.is_parallel pool && n > 1 then
    ignore
      (Pool.map_array pool
         (fun bi ->
           Kernel.sample_batch_into kernels.(bi) ~batch ~dst:plane
             ~off:(bi * per))
         (Array.init n (fun i -> i)))
  else
    for bi = 0 to n - 1 do
      Kernel.sample_batch_into kernels.(bi) ~batch ~dst:plane ~off:(bi * per)
    done

let execute_batch ?lane_mask ?(pool = Pool.sequential) ?kernel_mode t launch
    ~batch =
  if batch < 1 then invalid_batch batch
  else
    let sequential () =
      let rec go acc d =
        if d = batch then Ok (Array.of_list (List.rev acc))
        else
          match execute ?lane_mask ~pool ?kernel_mode t launch with
          | Ok r -> go (r :: acc) (d + 1)
          | Error e -> Error e
      in
      go [] 0
    in
    match batch_setup ?lane_mask ?kernel_mode t launch with
    | Error e -> Error e
    | Ok (_, _, None) -> sequential ()
    | Ok (banks, avail_adc, Some kernels) ->
        let task = launch.task in
        let iters = Task.iterations task in
        let n = Array.length banks in
        let per = batch * iters in
        let plane = batch_plane t ~need:(n * per) in
        fill_batch_plane ~pool ~kernels ~plane ~batch ~iters;
        let stall_cycles =
          if Task.uses_adc task then excess_adc_stalls task ~avail:avail_adc
          else 0
        in
        (* per-decision reduction: exactly the sequential fused fast
           loop of [execute], reading samples from the plane — same
           Crossbank combine, same TH, same per-decision trace record *)
        let partials = Array.make n 0.0 in
        let results =
          Array.init batch (fun d ->
              let th = Th_unit.create launch.th in
              let emitted = ref [] and acc_out = ref [] and wbuf = ref [] in
              let xreg_out = ref [] in
              for i = 0 to iters - 1 do
                for bi = 0 to n - 1 do
                  partials.(bi) <- plane.{(bi * per) + (d * iters) + i}
                done;
                let combined = Crossbank.combine partials in
                match Th_unit.push th combined with
                | Some emit ->
                    route_emit banks launch emit ~emitted ~acc_out ~xreg_out
                      ~wbuf
                | None -> ()
              done;
              (match Th_unit.finish th with
              | Some emit ->
                  route_emit banks launch emit ~emitted ~acc_out ~xreg_out
                    ~wbuf
              | None -> ());
              let record =
                {
                  Trace.task;
                  iterations = iters;
                  banks = n;
                  tp = Timing.task_tp task;
                  fill_cycles = Timing.fill_cycles task;
                  cycles = Timing.task_cycles task + stall_cycles;
                  adc_conversions = iters;
                  crossbank_transfers =
                    Crossbank.transfers_per_iteration ~banks:n * iters;
                  th_ops = Th_unit.ops_executed th;
                  stall_cycles;
                }
              in
              Trace.record t.trace record;
              {
                emitted = List.rev !emitted;
                acc_out = List.rev !acc_out;
                xreg_out = List.rev !xreg_out;
                write_buffer = List.rev !wbuf;
                argext = Th_unit.argext th;
                digital = [];
                record;
              })
        in
        Ok results

(* Emissions per decision on the batched serving path: every op except
   max/min emits once per TH group (the final partial group included,
   flushed by [Th_unit.finish]); max/min emit their extremum exactly
   once at finish. *)
let emissions_per_decision (task : Task.t) ~(th : Th_unit.config) =
  let iters = Task.iterations task in
  let groups = (iters + th.Th_unit.acc_num) / (th.Th_unit.acc_num + 1) in
  match th.Th_unit.op with
  | Opcode.C4_max | Opcode.C4_min -> 1
  | _ -> groups

let execute_batch_into ?lane_mask ?(pool = Pool.sequential) ?kernel_mode t
    launch ~batch ~(out : A.Rng.ba) =
  if batch < 1 then invalid_batch batch
  else
    match
      match injected_fault launch with
      | Error e -> Error e
      | Ok () -> batch_setup ?lane_mask ?kernel_mode t launch
    with
    | Error e -> Error e
    | Ok (_, _, None) ->
        E.fail ~layer:"machine" ~code:E.Unsupported
          ~context:
            [ ("des", "xreg/write_buffer feedback, reference mode, or \
                       non-fused task shape") ]
          "execute_batch_into requires the batched fused fast path"
    | Ok (banks, avail_adc, Some kernels) ->
        let task = launch.task in
        let iters = Task.iterations task in
        let thc = launch.th in
        let epd = emissions_per_decision task ~th:thc in
        if Bigarray.Array1.dim out < batch * epd then
          E.fail ~layer:"machine" ~code:E.Invalid_operand
            ~context:
              [
                ("out", string_of_int (Bigarray.Array1.dim out));
                ("needed", string_of_int (batch * epd));
              ]
            "output buffer too small for batch"
        else begin
          let n = Array.length banks in
          let per = batch * iters in
          let plane = batch_plane t ~need:(n * per) in
          fill_batch_plane ~pool ~kernels ~plane ~batch ~iters;
          let stalls =
            if Task.uses_adc task then excess_adc_stalls task ~avail:avail_adc
            else 0
          in
          (* TH inlined for the zero-allocation loop: [Th_unit.push]'s
             state lives in a mixed record whose float stores box, and
             its emits are [Some {record}] — both allocate per group.
             The arithmetic below is [Th_unit]'s own, operation for
             operation, and the differential suite (test_batch) holds
             this path bitwise equal to [execute] + [Th_unit] over
             random tasks; any TH change must keep it green. Scratch:
             [bacc.(0)] the cross-bank combine, [bacc.(1)] the TH group
             accumulator, [bacc.(2)] the running extremum, [bacc.(3)]
             the group value handed to [apply_group] — passed through
             the float array rather than as an argument because a float
             argument to a local closure is boxed on every call (one
             box per TH group defeats the zero-allocation property). *)
          let op = thc.Th_unit.op in
          let acc_num = thc.Th_unit.acc_num in
          let gain = thc.Th_unit.gain in
          let threshold = thc.Th_unit.threshold in
          let acc_n1f = float_of_int (acc_num + 1) in
          let bacc = t.bacc in
          let gcount = ref 0 in
          let emit_at = ref 0 in
          let ext_set = ref false in
          let apply_group () =
            let value = bacc.(3) in
            match op with
            | Opcode.C4_accumulate ->
                out.{!emit_at} <- value;
                incr emit_at
            | Opcode.C4_mean ->
                out.{!emit_at} <- value /. acc_n1f;
                incr emit_at
            | Opcode.C4_threshold ->
                out.{!emit_at} <- (if value > threshold then 1.0 else 0.0);
                incr emit_at
            | Opcode.C4_sigmoid ->
                out.{!emit_at} <- Th_unit.pwl_sigmoid value;
                incr emit_at
            | Opcode.C4_relu ->
                out.{!emit_at} <- Th_unit.relu value;
                incr emit_at
            | Opcode.C4_max ->
                if (not !ext_set) || value > bacc.(2) then begin
                  bacc.(2) <- value;
                  ext_set := true
                end
            | Opcode.C4_min ->
                if (not !ext_set) || value < bacc.(2) then begin
                  bacc.(2) <- value;
                  ext_set := true
                end
          in
          for d = 0 to batch - 1 do
            bacc.(1) <- 0.0;
            gcount := 0;
            ext_set := false;
            for i = 0 to iters - 1 do
              bacc.(0) <- 0.0;
              for bi = 0 to n - 1 do
                bacc.(0) <- bacc.(0) +. plane.{(bi * per) + (d * iters) + i}
              done;
              bacc.(1) <- bacc.(1) +. (gain *. bacc.(0));
              incr gcount;
              if !gcount = acc_num + 1 then begin
                bacc.(3) <- bacc.(1);
                bacc.(1) <- 0.0;
                gcount := 0;
                apply_group ()
              end
            done;
            if !gcount > 0 then begin
              bacc.(3) <- bacc.(1);
              bacc.(1) <- 0.0;
              gcount := 0;
              apply_group ()
            end;
            (match op with
            | Opcode.C4_max | Opcode.C4_min ->
                out.{!emit_at} <- bacc.(2);
                incr emit_at
            | _ -> ())
          done;
          (* one trace record for the whole batch, with the pipelined
             timing model: the pipeline never drains between decisions
             of the same task shape, so each decision after the first
             adds [iterations × TP] cycles (TP = max stage delay), plus
             its own degraded-ADC stalls *)
          let tp = Timing.task_tp task in
          let record =
            {
              Trace.task;
              iterations = batch * iters;
              banks = n;
              tp;
              fill_cycles = Timing.fill_cycles task;
              cycles =
                Timing.task_cycles task
                + ((batch - 1) * iters * tp)
                + (batch * stalls);
              adc_conversions = batch * iters;
              crossbank_transfers =
                Crossbank.transfers_per_iteration ~banks:n * iters * batch;
              th_ops =
                batch * ((iters + acc_num) / (acc_num + 1));
              stall_cycles = batch * stalls;
            }
          in
          Trace.record t.trace record;
          Ok epd
        end

let run_program_batch ?pool ?kernel_mode t (program : Program.t) ~batch =
  if batch < 1 then invalid_batch batch
  else
    match program.Program.tasks with
    | [ task ] ->
        Result.map
          (Array.map (fun r -> [ r ]))
          (execute_batch ?pool ?kernel_mode t (default_launch task) ~batch)
    | _ ->
        (* multi-task programs may feed bank state forward between
           tasks (X-REG / write-buffer destinations), so decisions
           replay sequentially — the general correct path *)
        let rec go acc d =
          if d = batch then Ok (Array.of_list (List.rev acc))
          else
            match run_program ?pool ?kernel_mode t program with
            | Ok rs -> go (rs :: acc) (d + 1)
            | Error e -> Error e
        in
        go [] 0

(* Scatter a dense logical slice onto the physical lanes named by
   [lane_map] (lane sparing); identity when no map. *)
let scatter ?lane_map slice =
  match lane_map with
  | None -> slice
  | Some map ->
      if Array.length slice > Array.length map then
        invalid_arg "Machine: lane_map shorter than the slice";
      let phys = Array.make Params.lanes 0 in
      Array.iteri (fun l c -> phys.(map.(l)) <- c) slice;
      phys

let load_weights ?lane_map t ~group ~base ~plan w =
  let n = plan.Layout.banks in
  let first = group * n in
  if first + n > n_banks t then
    invalid_arg "Machine.load_weights: group exceeds machine";
  let rows = Array.length w in
  if base + (rows * plan.Layout.segments) > Params.word_rows then
    invalid_arg "Machine.load_weights: rows overflow the bank";
  Array.iteri
    (fun r row ->
      for bank_i = 0 to n - 1 do
        for segment = 0 to plan.Layout.segments - 1 do
          let slice =
            scatter ?lane_map
              (Layout.slice_of_vector plan row ~bank:bank_i ~segment)
          in
          let word_row = base + (r * plan.Layout.segments) + segment in
          Bitcell_array.write
            (Bank.array t.banks.(first + bank_i))
            ~word_row slice
        done
      done)
    w

let load_x ?lane_map t ~group ~xreg_base ~plan x =
  let n = plan.Layout.banks in
  let first = group * n in
  if first + n > n_banks t then
    invalid_arg "Machine.load_x: group exceeds machine";
  if xreg_base + plan.Layout.segments > Params.xreg_depth then
    invalid_arg "Machine.load_x: X-REG overflow";
  for bank_i = 0 to n - 1 do
    for segment = 0 to plan.Layout.segments - 1 do
      let slice =
        scatter ?lane_map (Layout.slice_of_vector plan x ~bank:bank_i ~segment)
      in
      Xreg.load
        (Bank.xreg t.banks.(first + bank_i))
        ~index:(xreg_base + segment) slice
    done
  done

let read_xreg t ~bank:i ~xreg = Xreg.get (Bank.xreg (bank t i)) ~index:xreg
