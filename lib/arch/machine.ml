open Promise_isa
module A = Promise_analog
module E = Promise_core.Error
module Pool = Promise_core.Pool

type config = {
  banks : int;
  profile : Bank.profile;
  noise_seed : int option;
}

let default_config = { banks = 4; profile = Bank.Silicon; noise_seed = Some 42 }
let ideal_config ~banks = { banks; profile = Bank.Ideal; noise_seed = None }

type t = {
  config : config;
  banks : Bank.t array;
  trace : Trace.t;
  (* one slot per bank: the last kernel specialized for it, revalidated
     by [Kernel.matches] on every execute (replay workloads re-launch
     the same task, so specialization amortizes to zero) *)
  kernel_cache : Kernel.t option array;
}

type kernel_mode = Fused | Reference

let env_kernel_mode =
  lazy
    (match Sys.getenv_opt "PROMISE_KERNEL_MODE" with
    | None -> Fused
    | Some s -> (
        match String.lowercase_ascii (String.trim s) with
        | "reference" | "ref" | "scalar" -> Reference
        | _ -> Fused))

let default_kernel_mode () = Lazy.force env_kernel_mode

let create (config : config) =
  if config.banks < 1 || config.banks > 64 then
    invalid_arg "Machine.create: banks must be in [1, 64]";
  let root_rng = A.Rng.create (Option.value config.noise_seed ~default:0) in
  (* one split stream per bank, in ascending bank order: bank [i]'s
     noise draws depend only on (seed, i), never on how the other
     banks are stepped — the invariant parallel execution relies on *)
  let streams = A.Rng.split_n root_rng config.banks in
  let make_bank i =
    let noise =
      match config.noise_seed with
      | None -> A.Noise.disabled
      | Some _ -> A.Noise.create ~rng:streams.(i) ()
    in
    Bank.create ~profile:config.profile ~noise ()
  in
  {
    config;
    banks = Array.init config.banks make_bank;
    trace = Trace.create ();
    kernel_cache = Array.make config.banks None;
  }

let config t = t.config
let n_banks t = Array.length t.banks

let bank t i =
  if i < 0 || i >= n_banks t then invalid_arg "Machine.bank: index out of range";
  t.banks.(i)

let trace t = t.trace
let reset_trace t =
  t.trace.Trace.records <- [];
  t.trace.Trace.total_cycles <- 0

type launch = {
  task : Task.t;
  bank_group : int;
  active_lanes : int;
  adc_gain : float;
  th : Th_unit.config;
  dest_xreg : int;
}

type result = {
  emitted : float list;
  acc_out : float list;
  xreg_out : float list;
  write_buffer : int list;
  argext : (int * float) option;
  digital : int array list;
  record : Trace.task_record;
}

let group_banks t launch =
  let n = Task.banks launch.task in
  let first = launch.bank_group * n in
  if launch.bank_group < 0 || first + n > n_banks t then
    E.fail ~layer:"machine" ~code:E.Capacity
      ~context:
        [
          ("group", string_of_int launch.bank_group);
          ("group_banks", string_of_int n);
          ("machine_banks", string_of_int (n_banks t));
        ]
      "bank group exceeds machine"
  else Ok (Array.init n (fun i -> t.banks.(first + i)))

let quantize_code = Promise_core.Quant.quantize8

let route_emit banks launch (emit : Th_unit.emit) ~emitted ~acc_out ~xreg_out
    ~wbuf =
  match emit.Th_unit.des with
  | Opcode.Des_output_buffer -> emitted := emit.Th_unit.value :: !emitted
  | Opcode.Des_acc -> acc_out := emit.Th_unit.value :: !acc_out
  | Opcode.Des_xreg ->
      let code = quantize_code emit.Th_unit.value in
      Array.iter
        (fun b -> Xreg.stage_element (Bank.xreg b) ~index:launch.dest_xreg code)
        banks;
      xreg_out := (float_of_int code /. 128.0) :: !xreg_out
  | Opcode.Des_write_buffer ->
      let code = quantize_code emit.Th_unit.value in
      Array.iter (fun b -> Bank.stage_write_code b code) banks;
      wbuf := code :: !wbuf

(* Excess pipeline stalls when some of the group's ADC units are dead:
   the discrete-event scheduler run with the reduced unit count, minus
   its healthy-baseline stalls. Zero-cost on a healthy group.

   The scheduler's output depends only on the task's stage delays
   (TP derives from d1/d2/d4 and [uses_adc] from d3), the iteration
   count, and the unit count — so the two simulation runs are memoized
   on exactly that shape. Degraded campaigns launch the same few task
   shapes thousands of times; the table stays tiny. *)
let stall_memo : (int * int * int * int * int * int, int) Hashtbl.t =
  Hashtbl.create 64

let stall_memo_mutex = Mutex.create ()
let stall_memo_hits = ref 0
let stall_memo_misses = ref 0

let excess_adc_stalls (task : Task.t) ~avail =
  if avail >= A.Adc.units_per_bank then 0
  else
    let key =
      ( Timing.class1_delay task.class1,
        Timing.class2_delay task.class2,
        Timing.class3_latency task.class3,
        Timing.class4_delay task.class4,
        Task.iterations task,
        avail )
    in
    Mutex.protect stall_memo_mutex (fun () ->
        match Hashtbl.find_opt stall_memo key with
        | Some excess ->
            incr stall_memo_hits;
            excess
        | None ->
            incr stall_memo_misses;
            let stalls units =
              (Scheduler.run ~ideal_adc:false ~adc_units:units task)
                .Scheduler.adc_stalls
            in
            let excess = max 0 (stalls avail - stalls A.Adc.units_per_bank) in
            Hashtbl.add stall_memo key excess;
            excess)

module For_tests = struct
  let stall_memo_stats () =
    Mutex.protect stall_memo_mutex (fun () ->
        (!stall_memo_hits, !stall_memo_misses))

  let reset_stall_memo () =
    Mutex.protect stall_memo_mutex (fun () ->
        Hashtbl.reset stall_memo;
        stall_memo_hits := 0;
        stall_memo_misses := 0)
end

(* A multi-bank task may fan its banks out across a pool only when the
   emit destination never feeds back into bank state mid-task: X-REG
   and write-buffer emits are staged into the banks while iterations
   are still running, so those tasks stay on the sequential path. *)
let cross_bank_safe launch =
  match launch.th.Th_unit.des with
  | Opcode.Des_output_buffer | Opcode.Des_acc -> true
  | Opcode.Des_xreg | Opcode.Des_write_buffer -> false

let execute ?lane_mask ?(pool = Pool.sequential) ?kernel_mode t launch =
  let ( let* ) = Result.bind in
  let task = launch.task in
  let kernel_mode =
    match kernel_mode with Some m -> m | None -> default_kernel_mode ()
  in
  let* () =
    match Task.validate task with
    | Ok _ -> Ok ()
    | Error d -> Error (Promise_core.Diag.to_error ~layer:"machine" d)
  in
  let* banks = group_banks t launch in
  let* avail_adc =
    let avail =
      Array.fold_left
        (fun acc b -> min acc (Faults.adc_units_available (Bank.faults b)))
        A.Adc.units_per_bank banks
    in
    if Task.uses_adc task && avail < 1 then
      E.fail ~layer:"machine" ~code:E.Fault
        ~context:[ ("group", string_of_int launch.bank_group) ]
        "all ADC units of the bank group are dead"
    else Ok avail
  in
  let n_banks_used = Array.length banks in
  let th = Th_unit.create launch.th in
  let emitted = ref [] and acc_out = ref [] and wbuf = ref [] in
  let xreg_out = ref [] in
  let digital = ref [] in
  let adc_conversions = ref 0 in
  let iterations = Task.iterations task in
  (* Fused mode: one compiled kernel per bank of the group, revalidated
     against the per-bank cache (same bank + task + launch shape +
     faults → reuse, so replay workloads pay specialization once). *)
  let kernels =
    match kernel_mode with
    | Reference -> None
    | Fused ->
        let first = launch.bank_group * Task.banks task in
        Some
          (Array.mapi
             (fun bi b ->
               let slot = first + bi in
               match t.kernel_cache.(slot) with
               | Some k
                 when Kernel.matches k b ~task
                        ~active_lanes:launch.active_lanes
                        ~adc_gain:launch.adc_gain ~lane_mask ->
                   k
               | Some _ | None ->
                   let k =
                     Kernel.specialize ?lane_mask b ~task
                       ~active_lanes:launch.active_lanes
                       ~adc_gain:launch.adc_gain
                   in
                   t.kernel_cache.(slot) <- Some k;
                   k)
             banks)
  in
  let step_bank bi b ~iteration =
    match kernels with
    | Some ks -> Kernel.step ks.(bi) ~iteration
    | None ->
        Bank.run_iteration ?lane_mask b ~task ~iteration
          ~active_lanes:launch.active_lanes ~adc_gain:launch.adc_gain
  in
  (* Parallel path: each bank runs all of its iterations on one domain
     (bank-major), which preserves the bank's private RNG draw order
     exactly as the sequential iteration-major loop would — banks never
     read each other's state, so the precomputed steps are bit-identical
     and the sequential replay below reduces them in canonical order. *)
  let precomputed =
    if
      Pool.is_parallel pool && n_banks_used > 1 && iterations > 0
      && cross_bank_safe launch
    then
      Some
        (Pool.map_array pool
           (fun bi ->
             let b = banks.(bi) in
             let steps = Array.make iterations Bank.Idle in
             for iteration = 0 to iterations - 1 do
               steps.(iteration) <- step_bank bi b ~iteration
             done;
             steps)
           (Array.init n_banks_used (fun i -> i)))
    else None
  in
  (match (precomputed, kernels) with
  | None, Some ks when Array.for_all Kernel.is_fused ks ->
      (* fused fast loop: the task shape guarantees every bank yields a
         Sample every iteration, so the per-iteration scaffolding of the
         general loop (fresh partials array, step dispatch, sample
         detection) collapses to kernel calls into one hoisted buffer *)
      let partials = Array.make n_banks_used 0.0 in
      for iteration = 0 to iterations - 1 do
        for bi = 0 to n_banks_used - 1 do
          Kernel.sample_into ks.(bi) ~iteration ~dst:partials ~at:bi
        done;
        adc_conversions := !adc_conversions + n_banks_used;
        let combined = Crossbank.combine partials in
        match Th_unit.push th combined with
        | Some emit ->
            route_emit banks launch emit ~emitted ~acc_out ~xreg_out ~wbuf
        | None -> ()
      done
  | _ ->
      for iteration = 0 to iterations - 1 do
        let partials = Array.make n_banks_used 0.0 in
        let got_sample = ref false in
        Array.iteri
          (fun bi b ->
            match
              match precomputed with
              | Some steps -> steps.(bi).(iteration)
              | None -> step_bank bi b ~iteration
            with
            | Bank.Sample s ->
                partials.(bi) <- s;
                got_sample := true;
                incr adc_conversions
            | Bank.Digital_vector v ->
                if bi = 0 then digital := v :: !digital;
                if Task.uses_adc task then
                  adc_conversions := !adc_conversions + launch.active_lanes
            | Bank.Analog_vector _ | Bank.Idle -> ())
          banks;
        if !got_sample then
          let combined = Crossbank.combine partials in
          match Th_unit.push th combined with
          | Some emit ->
              route_emit banks launch emit ~emitted ~acc_out ~xreg_out ~wbuf
          | None -> ()
      done);
  (match Th_unit.finish th with
  | Some emit -> route_emit banks launch emit ~emitted ~acc_out ~xreg_out ~wbuf
  | None -> ());
  let stall_cycles =
    if Task.uses_adc task then excess_adc_stalls task ~avail:avail_adc else 0
  in
  let record =
    {
      Trace.task = task;
      iterations;
      banks = n_banks_used;
      tp = Timing.task_tp task;
      fill_cycles = Timing.fill_cycles task;
      cycles = Timing.task_cycles task + stall_cycles;
      adc_conversions = !adc_conversions / max 1 n_banks_used;
      crossbank_transfers =
        Crossbank.transfers_per_iteration ~banks:n_banks_used * iterations;
      th_ops = Th_unit.ops_executed th;
      stall_cycles;
    }
  in
  Trace.record t.trace record;
  Ok
    {
      emitted = List.rev !emitted;
      acc_out = List.rev !acc_out;
      xreg_out = List.rev !xreg_out;
      write_buffer = List.rev !wbuf;
      argext = Th_unit.argext th;
      digital = List.rev !digital;
      record;
    }

let execute_exn ?lane_mask ?pool ?kernel_mode t launch =
  E.to_invalid_arg (execute ?lane_mask ?pool ?kernel_mode t launch)

let run ?pool ?kernel_mode t launches =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match execute ?pool ?kernel_mode t l with
        | Ok r -> go (r :: acc) rest
        | Error e -> Error e)
  in
  go [] launches

let default_launch (task : Task.t) =
  let p = task.Task.op_param in
  {
    task;
    bank_group = 0;
    active_lanes = Params.lanes;
    adc_gain = 1.0;
    th =
      {
        Th_unit.op = task.Task.class4;
        acc_num = p.Op_param.acc_num;
        threshold = (float_of_int p.Op_param.thres_val /. 7.5) -. 1.0;
        gain = float_of_int Params.lanes *. Bank.analog_scale task;
        des = p.Op_param.des;
      };
    dest_xreg = Params.xreg_depth - 1;
  }

let run_program ?pool ?kernel_mode t (program : Program.t) =
  run ?pool ?kernel_mode t (List.map default_launch program.Program.tasks)

(* Scatter a dense logical slice onto the physical lanes named by
   [lane_map] (lane sparing); identity when no map. *)
let scatter ?lane_map slice =
  match lane_map with
  | None -> slice
  | Some map ->
      if Array.length slice > Array.length map then
        invalid_arg "Machine: lane_map shorter than the slice";
      let phys = Array.make Params.lanes 0 in
      Array.iteri (fun l c -> phys.(map.(l)) <- c) slice;
      phys

let load_weights ?lane_map t ~group ~base ~plan w =
  let n = plan.Layout.banks in
  let first = group * n in
  if first + n > n_banks t then
    invalid_arg "Machine.load_weights: group exceeds machine";
  let rows = Array.length w in
  if base + (rows * plan.Layout.segments) > Params.word_rows then
    invalid_arg "Machine.load_weights: rows overflow the bank";
  Array.iteri
    (fun r row ->
      for bank_i = 0 to n - 1 do
        for segment = 0 to plan.Layout.segments - 1 do
          let slice =
            scatter ?lane_map
              (Layout.slice_of_vector plan row ~bank:bank_i ~segment)
          in
          let word_row = base + (r * plan.Layout.segments) + segment in
          Bitcell_array.write
            (Bank.array t.banks.(first + bank_i))
            ~word_row slice
        done
      done)
    w

let load_x ?lane_map t ~group ~xreg_base ~plan x =
  let n = plan.Layout.banks in
  let first = group * n in
  if first + n > n_banks t then
    invalid_arg "Machine.load_x: group exceeds machine";
  if xreg_base + plan.Layout.segments > Params.xreg_depth then
    invalid_arg "Machine.load_x: X-REG overflow";
  for bank_i = 0 to n - 1 do
    for segment = 0 to plan.Layout.segments - 1 do
      let slice =
        scatter ?lane_map (Layout.slice_of_vector plan x ~bank:bank_i ~segment)
      in
      Xreg.load
        (Bank.xreg t.banks.(first + bank_i))
        ~index:(xreg_base + segment) slice
    done
  done

let read_xreg t ~bank:i ~xreg = Xreg.get (Bank.xreg (bank t i)) ~index:xreg
