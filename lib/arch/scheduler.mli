(** A discrete-event model of the four-stage analog pipeline (paper
    Fig. 3/4) — the cycle-level counterpart of the closed-form
    {!Timing} model, standing in for the paper's cycle-accurate Verilog
    validation (§5, "architecture-level validation").

    Each Task iteration flows through S1 (Class-1) → S2 (Class-2 aSD +
    aVD) → S3 (one of the eight pipelined ADC units) → S4 (TH). A stage
    accepts a new iteration every TP cycles (the pipeline is
    synchronous: TP accommodates the slowest of S1/S2/S4); the ADC's
    138-cycle latency is hidden by its eight units as long as
    8 × TP ≥ 138 — when a unit is still busy, the pipeline stalls,
    which this model makes visible (unlike the closed form). *)

type event = {
  iteration : int;
  stage : string;  (** "S1" | "S2" | "ADC" | "TH" *)
  start : int;  (** cycle the stage begins *)
  finish : int;  (** cycle its result is ready *)
}

type schedule = {
  events : event list;  (** iteration-major, stage order *)
  completion : int;  (** cycle the last TH result is ready *)
  adc_stalls : int;  (** cycles lost waiting for a free ADC unit *)
}

(** [run ?ideal_adc task] — simulate every iteration of [task] through
    the pipeline. With [ideal_adc] (default true) the ADC is fully
    internally pipelined, as the paper's throughput model assumes; with
    [~ideal_adc:false] each of the eight units is busy for the whole
    138-cycle conversion, exposing stalls whenever 8·TP < 138 (the
    inconsistency the EXPERIMENTS.md fidelity note quantifies).
    [adc_units] (default 8, must be ≥ 1) models a bank with some ADC
    units disabled (see {!Faults.with_dead_adc_units}); it only
    matters with [~ideal_adc:false]. *)
val run : ?ideal_adc:bool -> ?adc_units:int -> Promise_isa.Task.t -> schedule

(** [throughput_interval s] — observed steady-state initiation interval:
    the mean gap between TH completions over the second half of the
    run (stalls are bursty). Equals {!Timing.task_tp} when the ADC
    does not stall. *)
val throughput_interval : schedule -> int option

(** [run_batch ?ideal_adc ?adc_units task ~batch] — simulate [batch]
    back-to-back decisions of [task] through the pipeline with no drain
    between them: a new iteration issues every TP cycles straight
    across decision boundaries, so only the first decision pays the
    fill latency. This is the timing model of
    {!Machine.execute_batch_into}'s batch trace record. Raises
    [Invalid_argument] when [batch < 1]. *)
val run_batch :
  ?ideal_adc:bool ->
  ?adc_units:int ->
  Promise_isa.Task.t ->
  batch:int ->
  schedule

(** [matches_closed_form task] — the discrete-event completion time
    equals {!Timing.task_cycles} (no-stall case); used by property
    tests. *)
val matches_closed_form : Promise_isa.Task.t -> bool

(** [batch_matches_closed_form task ~batch] — {!run_batch}'s ideal-ADC
    completion equals [task_cycles + (batch − 1) × iterations × TP];
    the closed form the batched machine path records. *)
val batch_matches_closed_form : Promise_isa.Task.t -> batch:int -> bool
