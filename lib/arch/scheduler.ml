open Promise_isa

type event = { iteration : int; stage : string; start : int; finish : int }

type schedule = { events : event list; completion : int; adc_stalls : int }

(* The closed-form model (and the paper's own throughput numbers) treat
   the eight-unit ADC as fully pipelined: a new conversion can start
   every TP cycles and only the 138-cycle latency is visible. With the
   units modeled individually (each busy for the whole conversion),
   8 x TP >= 138 is required for stall-free operation — the harness's
   fidelity section quantifies that gap. [ideal_adc] selects between
   the two. *)
let run_iters ~ideal_adc ~adc_units ~total (task : Task.t) =
  if adc_units < 1 then invalid_arg "Scheduler.run: adc_units must be >= 1";
  let tp = Timing.task_tp task in
  let d1 = Timing.class1_delay task.Task.class1 in
  let d2 = Timing.class2_delay task.Task.class2 in
  let d3 = Timing.class3_latency task.Task.class3 in
  let d4 = Timing.class4_delay task.Task.class4 in
  let uses_adc = Task.uses_adc task in
  let n = total in
  let unit_free = Array.make adc_units 0 in
  let events = ref [] in
  let emit iteration stage start finish =
    events := { iteration; stage; start; finish } :: !events
  in
  let completion = ref 0 in
  let adc_stalls = ref 0 in
  let slip = ref 0 in
  for i = 0 to n - 1 do
    let issue = (i * tp) + !slip in
    let t = ref issue in
    if d1 > 0 then begin
      emit i "S1" !t (!t + d1);
      t := !t + d1
    end;
    if d2 > 0 then begin
      emit i "S2" !t (!t + d2);
      t := !t + d2
    end;
    if uses_adc then begin
      let request = !t in
      let start =
        if ideal_adc then request
        else begin
          (* greedy: the soonest-free of the eight units *)
          let u = ref 0 in
          Array.iteri (fun k free -> if free < unit_free.(!u) then u := k) unit_free;
          let start = max request unit_free.(!u) in
          unit_free.(!u) <- start + d3;
          let stall = start - request in
          adc_stalls := !adc_stalls + stall;
          slip := !slip + stall;
          start
        end
      in
      emit i "ADC" start (start + d3);
      t := start + d3
    end;
    if d4 > 0 then begin
      emit i "TH" !t (!t + d4);
      t := !t + d4
    end;
    completion := max !completion !t
  done;
  { events = List.rev !events; completion = !completion; adc_stalls = !adc_stalls }

let run ?(ideal_adc = true) ?(adc_units = Promise_analog.Adc.units_per_bank)
    (task : Task.t) =
  run_iters ~ideal_adc ~adc_units ~total:(Task.iterations task) task

(* A batch keeps issuing iterations every TP cycles across decision
   boundaries — the pipeline never drains between decisions of the same
   task shape, which is where the batched throughput comes from: only
   the first decision pays the fill latency. *)
let run_batch ?(ideal_adc = true)
    ?(adc_units = Promise_analog.Adc.units_per_bank) (task : Task.t) ~batch =
  if batch < 1 then invalid_arg "Scheduler.run_batch: batch must be >= 1";
  run_iters ~ideal_adc ~adc_units ~total:(batch * Task.iterations task) task

let throughput_interval s =
  let th_finishes =
    List.filter_map
      (fun e -> if e.stage = "TH" then Some e.finish else None)
      s.events
  in
  (* stalls are bursty (one per ADC-unit reuse), so average over the
     steady-state second half rather than sampling one gap *)
  let n = List.length th_finishes in
  if n < 2 then None
  else
    let arr = Array.of_list th_finishes in
    let from = n / 2 in
    let span = arr.(n - 1) - arr.(from) in
    let gaps = n - 1 - from in
    if gaps <= 0 then Some (arr.(n - 1) - arr.(n - 2))
    else Some (int_of_float (Float.round (float_of_int span /. float_of_int gaps)))

let matches_closed_form task =
  let s = run ~ideal_adc:true task in
  s.completion = Timing.task_cycles task

let batch_matches_closed_form task ~batch =
  let s = run_batch ~ideal_adc:true task ~batch in
  s.completion
  = Timing.task_cycles task
    + ((batch - 1) * Task.iterations task * Timing.task_tp task)
