(** TH: the Class-4 digital thresholding block (paper §3.1, Fig. 5(c)).

    TH receives one digitized aggregate per Task iteration (after the
    cross-bank rail has combined per-bank partials), applies a digital
    pre-gain that undoes the analog gain staging (charge-share averaging
    and aSD headroom scaling — see DESIGN.md), groups [ACC_NUM + 1]
    consecutive samples (how long vectors spread over [X_PRD] word rows
    are summed), and applies one of the seven TH operations. Non-linear
    ops use piece-wise-linear approximations (paper cites [29]). *)

type config = {
  op : Promise_isa.Opcode.class4;
  acc_num : int;  (** group size is [acc_num + 1] *)
  threshold : float;  (** threshold in post-gain units *)
  gain : float;  (** digital pre-gain per sample *)
  des : Promise_isa.Opcode.destination;
}

(** A value leaving TH: [group_index] counts emitted groups from 0. *)
type emit = {
  value : float;
  group_index : int;
  des : Promise_isa.Opcode.destination;
}

type t

val create : config -> t

(** [push t sample] — feed one combined iteration sample; [Some emit]
    when a group completes and the op emits immediately (max/min emit
    only at {!finish}). *)
val push : t -> float -> emit option

(** [finish t] — end of Task: max/min emit their extremum; a partial
    accumulate group (shorter than [acc_num + 1]) is flushed. *)
val finish : t -> emit option

(** [ops_executed t] — Class-4 operations performed (for the trace). *)
val ops_executed : t -> int

(** [argext t] — for max/min, the (group index, value) of the running
    extremum — the "decision" output of e.g. template matching. *)
val argext : t -> (int * float) option

(** [reset t] — restore the state a fresh [create config] would have,
    in place. The batch execution engine drives one TH per decision of
    a batch through the same [t], so the steady-state decision loop
    allocates nothing. *)
val reset : t -> unit

(** [pwl_sigmoid x] — the PLAN piece-wise-linear sigmoid approximation
    (max error < 0.019 vs the exact logistic). *)
val pwl_sigmoid : float -> float

(** [relu x]. *)
val relu : float -> float
