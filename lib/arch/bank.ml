open Promise_isa
module A = Promise_analog

type profile = Ideal | Silicon | Custom of { lut : bool; leakage : bool }

type t = {
  array : Bitcell_array.t;
  xreg : Xreg.t;
  noise : A.Noise.t;
  profile : profile;
  mutable write_data : int array option;
  mutable staged_writes : int list;  (* reversed *)
  mutable faults : Faults.t;
  mutable fault_rng : A.Rng.t option;  (* X-REG transient upsets *)
}

let create ?(profile = Silicon) ~noise () =
  {
    array = Bitcell_array.create ();
    xreg = Xreg.create ();
    noise;
    profile;
    write_data = None;
    staged_writes = [];
    faults = Faults.none;
    fault_rng = None;
  }

let stage_write_code t code =
  if code < -128 || code > 127 then
    invalid_arg "Bank.stage_write_code: code not 8-bit";
  t.staged_writes <- code :: t.staged_writes

let staged_write_count t = List.length t.staged_writes

let set_faults t f =
  t.faults <- f;
  t.fault_rng <-
    (match Faults.xreg_flip f with
    | None -> None
    | Some { Faults.seed; _ } -> Some (A.Rng.create seed))

let faults t = t.faults

(* X-REG read with the transient single-bit-upset model: each element
   read flips one random bit of its 8-bit two's-complement code with
   probability [rate]. *)
let xreg_normalized t ~index =
  match (Faults.xreg_flip t.faults, t.fault_rng) with
  | None, _ | _, None -> Xreg.get_normalized t.xreg ~index
  | Some { Faults.rate; _ }, Some rng ->
      let codes = Xreg.get t.xreg ~index in
      Array.map
        (fun c ->
          let c =
            if A.Rng.float rng < rate then begin
              let u = (c + 256) land 0xff in
              let u = u lxor (1 lsl A.Rng.int rng 8) in
              if u > 127 then u - 256 else u
            end
            else c
          in
          float_of_int c /. 128.0)
        codes

let array t = t.array
let xreg t = t.xreg
let profile t = t.profile
let noise t = t.noise
let transient_rng t = t.fault_rng
let set_write_data t codes = t.write_data <- Some codes

type step =
  | Sample of float
  | Digital_vector of int array
  | Analog_vector of float array
  | Idle

let class1_scale = function
  | Opcode.C1_asubt | Opcode.C1_aadd -> 2.0
  | Opcode.C1_none | Opcode.C1_write | Opcode.C1_read | Opcode.C1_aread -> 1.0

let analog_scale (task : Task.t) =
  let s1 = class1_scale task.class1 in
  match task.class2.asd with
  | Opcode.Asd_square -> s1 *. s1
  | Opcode.Asd_compare -> 1.0
  | Opcode.Asd_none | Opcode.Asd_absolute | Opcode.Asd_sign_mult
  | Opcode.Asd_unsign_mult ->
      s1

let lut_for_profile profile select =
  match profile with
  | Ideal | Custom { lut = false; _ } -> A.Lut.identity
  | Silicon | Custom { lut = true; _ } -> select ()

let w_row_of ~(task : Task.t) ~iteration =
  (task.op_param.Op_param.w_addr + iteration) mod Params.word_rows

(* Leakage of the S1 analog flip-flops while waiting for the slower stage
   to consume them: idle for (TP - own delay) cycles. *)
let apply_idle_leakage t ~task v =
  match t.profile with
  | Ideal | Custom { leakage = false; _ } -> v
  | Silicon | Custom { leakage = true; _ } ->
      let tp = Timing.task_tp task in
      let idle =
        float_of_int (max 0 (tp - Timing.class1_delay task.Task.class1))
        *. Params.cycle_ns
      in
      let idle = Faults.effective_idle_ns t.faults ~idle_ns:idle in
      Array.map (A.Leakage.bitline ~idle_ns:idle) v

let run_class1 t ~(task : Task.t) ~iteration =
  let p = task.op_param in
  let swing = Faults.effective_swing t.faults ~swing:p.Op_param.swing in
  let lut = lut_for_profile t.profile (fun () -> A.Lut.Silicon.aread) in
  let word_row = w_row_of ~task ~iteration in
  match task.class1 with
  | Opcode.C1_none -> Idle
  | Opcode.C1_write ->
      (match t.write_data with
      | Some codes ->
          Bitcell_array.write t.array ~word_row codes;
          t.write_data <- None
      | None ->
          (* consume the DES=11 write data buffer *)
          let codes = Array.of_list (List.rev t.staged_writes) in
          t.staged_writes <- [];
          Bitcell_array.write t.array ~word_row
            (Array.sub codes 0 (min (Array.length codes) Params.lanes)));
      Idle
  | Opcode.C1_read ->
      if Faults.is_dead_bank t.faults then
        Digital_vector (Array.make Params.lanes 0)
      else Digital_vector (Bitcell_array.read t.array ~word_row)
  | Opcode.C1_aread ->
      Analog_vector
        (apply_idle_leakage t ~task
           (Faults.apply_stuck t.faults
              (Bitcell_array.aread t.array ~word_row ~swing ~noise:t.noise
                 ~lut)))
  | Opcode.C1_asubt | Opcode.C1_aadd ->
      let w =
        Faults.apply_stuck t.faults
          (Bitcell_array.aread t.array ~word_row ~swing ~noise:t.noise ~lut)
      in
      let x_index = Op_param.x_addr_at p ~base:p.Op_param.x_addr1 ~iteration in
      let x = xreg_normalized t ~index:x_index in
      let combine =
        match task.class1 with
        | Opcode.C1_asubt -> fun a b -> (a -. b) /. 2.0
        | Opcode.C1_aadd -> fun a b -> (a +. b) /. 2.0
        | _ -> assert false
      in
      Analog_vector (apply_idle_leakage t ~task (Array.map2 combine w x))

let run_asd t ~(task : Task.t) ~iteration values =
  let p = task.op_param in
  let lut select = lut_for_profile t.profile select in
  let shaped l v = A.Lut.apply l v in
  match task.class2.asd with
  | Opcode.Asd_none -> values
  | Opcode.Asd_compare ->
      let l = lut (fun () -> A.Lut.Silicon.compare_) in
      Array.map (fun v -> if shaped l v >= 0.0 then 1.0 else 0.0) values
  | Opcode.Asd_absolute ->
      let l = lut (fun () -> A.Lut.Silicon.absolute) in
      Array.map (fun v -> Float.abs (shaped l v)) values
  | Opcode.Asd_square ->
      let l = lut (fun () -> A.Lut.Silicon.square) in
      Array.map
        (fun v ->
          let v = shaped l v in
          v *. v)
        values
  | Opcode.Asd_sign_mult | Opcode.Asd_unsign_mult ->
      let l = lut (fun () -> A.Lut.Silicon.mult) in
      let x_index = Op_param.x_addr_at p ~base:p.Op_param.x_addr2 ~iteration in
      let x = xreg_normalized t ~index:x_index in
      let mul =
        match task.class2.asd with
        | Opcode.Asd_sign_mult -> fun a b -> shaped l (a *. b)
        | Opcode.Asd_unsign_mult ->
            fun a b -> shaped l (Float.abs a *. Float.abs b)
        | _ -> assert false
      in
      Array.map2 mul values x

let charge_share ?lane_mask ~active_lanes values =
  match lane_mask with
  | None ->
      let sum = ref 0.0 in
      for i = 0 to active_lanes - 1 do
        sum := !sum +. values.(i)
      done;
      !sum /. float_of_int active_lanes
  | Some mask ->
      (* spared layouts populate a scattered subset of physical lanes *)
      let sum = ref 0.0 and n = ref 0 in
      Array.iteri
        (fun i on ->
          if on && i < Array.length values then begin
            sum := !sum +. values.(i);
            incr n
          end)
        mask;
      if !n = 0 then 0.0 else !sum /. float_of_int !n

let run_iteration ?lane_mask t ~task ~iteration ~active_lanes ~adc_gain =
  if active_lanes < 1 || active_lanes > Params.lanes then
    invalid_arg "Bank.run_iteration: active_lanes out of [1, 128]";
  if adc_gain <= 0.0 then invalid_arg "Bank.run_iteration: adc_gain <= 0";
  match run_class1 t ~task ~iteration with
  | Idle -> Idle
  | Digital_vector _ as d -> d
  | Sample _ -> assert false
  | Analog_vector values -> (
      let values = run_asd t ~task ~iteration values in
      let digitizes = Task.uses_adc task in
      match (task.Task.class2.avd, digitizes) with
      | true, true ->
          let analog =
            (adc_gain *. charge_share ?lane_mask ~active_lanes values)
            +. Faults.adc_offset t.faults
          in
          Sample (A.Adc.convert analog /. adc_gain)
      | true, false ->
          (* validation rejects this, but stay total *)
          Analog_vector [| charge_share ?lane_mask ~active_lanes values |]
      | false, true ->
          Digital_vector
            (Array.map (fun v -> A.Adc.quantize v) values)
      | false, false -> Analog_vector values)
