(** Compiled per-task iteration kernels for the analog datapath.

    {!specialize} compiles a (bank, task, launch-shape) triple once,
    hoisting out of the iteration loop everything the scalar path
    ({!Bank.run_iteration}) recomputes every time: the effective swing
    and its noise factor, the transfer-curve selection (pre-sampled per
    8-bit code — exact, since the aREAD input domain is exactly the 256
    codes), the idle-slot leakage exponential, stuck/dead lane
    overrides, the charge-share membership set, and the ADC constants.
    {!sample_into} then runs S1 aREAD → Class-1 combine → leakage → S2
    aSD → S3 charge share → ADC as a single fused pass over
    preallocated scratch buffers, allocating nothing on the minor heap
    in the steady state — including the noise path, which draws its
    whole lane vector through {!Promise_analog.Rng.gaussian_fill}
    (the transient-upset path still draws per-lane and may allocate).

    Bit-identity contract: for every task, profile, fault set and lane
    mask, a fused kernel produces bitwise the same {!Bank.step} as the
    scalar path, consuming the bank's RNG streams draw-for-draw in the
    same order. The differential QCheck suite (test_kernels) enforces
    this; {!Machine.execute}'s [`Reference`] mode exists to run it and
    to debug any divergence.

    Tasks whose shape is not the fused one (analog Class-1, aVD on,
    Class-3 ADC) get a [Passthrough] kernel that simply delegates to
    {!Bank.run_iteration}. *)

type t

(** [specialize ?lane_mask bank ~task ~active_lanes ~adc_gain] —
    compile a kernel for running [task] on [bank] with this launch
    shape. Captures the bank's current faults and RNG stream objects;
    {!matches} reports whether a cached kernel is still valid. Raises
    [Invalid_argument] on the same bad arguments as
    {!Bank.run_iteration} ([active_lanes] outside [1, 128],
    non-positive [adc_gain]). *)
val specialize :
  ?lane_mask:bool array ->
  Bank.t ->
  task:Promise_isa.Task.t ->
  active_lanes:int ->
  adc_gain:float ->
  t

(** [is_fused t] — [false] when the kernel is a passthrough to the
    scalar path (non-fusable task shape). *)
val is_fused : t -> bool

(** [matches t bank ~task ~active_lanes ~adc_gain ~lane_mask] — whether
    [t] was specialized for exactly this bank object and launch shape,
    with the bank's faults (and its transient-upset RNG stream object —
    {!Bank.set_faults} re-seeds it, invalidating any kernel that
    captured the previous stream) unchanged since specialization. *)
val matches :
  t ->
  Bank.t ->
  task:Promise_isa.Task.t ->
  active_lanes:int ->
  adc_gain:float ->
  lane_mask:bool array option ->
  bool

(** [sample_into t ~iteration ~dst ~at] — run one fused iteration and
    store the digitized per-bank partial (the {!Bank.Sample} payload)
    into [dst.(at)]. Zero minor-heap allocations in the steady state.
    Raises [Invalid_argument] if the kernel is not fused. *)
val sample_into : t -> iteration:int -> dst:float array -> at:int -> unit

(** [step t ~iteration] — run one iteration through the kernel,
    returning the same {!Bank.step} the scalar path would. Fused
    kernels wrap {!sample_into}; passthrough kernels delegate to
    {!Bank.run_iteration}. *)
val step : t -> iteration:int -> Bank.step

(** [sample_batch_into t ~batch ~dst ~off] — run [batch] whole
    decisions through the fused kernel in one pass, storing the sample
    of decision [d], iteration [i] into [dst.{off + d*iterations + i}].

    Bit-identity: the samples (and the final RNG stream states) are
    exactly what [batch] back-to-back per-decision sweeps of
    {!sample_into} would produce. The batched path draws the noise for
    a whole tile of decisions through one
    {!Promise_analog.Rng.gaussian_fill_ba} call — bit-identical because
    the sequential path consumes the stream in the same
    (decision, iteration, lane) order and 128-lane vectors leave the
    Box-Muller cache empty at every decision boundary — and reads the
    per-(iteration × lane) invariants (aREAD value with stuck/dead
    overrides folded in, noise sigma, normalized X) from
    structure-of-arrays tables hoisted once per call. Kernels with a
    transient-upset stream draw a data-dependent number of variates per
    load and therefore take a decision-major scalar replay inside the
    same call. Zero minor-heap allocations per decision in the steady
    state (the tables and noise plane are grown once and reused).

    Raises [Invalid_argument] if the kernel is not fused, [batch < 1],
    or the [dst] slice [off .. off + batch*iterations - 1] is out of
    range. *)
val sample_batch_into :
  t -> batch:int -> dst:Promise_analog.Rng.ba -> off:int -> unit
