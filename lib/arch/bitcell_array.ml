type t = { words : int array array (* word_rows x lanes, 8-bit codes *) }

let create () =
  { words = Array.make_matrix Params.word_rows Params.lanes 0 }

let check_addr word_row =
  if word_row < 0 || word_row >= Params.word_rows then
    invalid_arg
      (Printf.sprintf "Bitcell_array: word row %d out of range [0, %d)"
         word_row Params.word_rows)

let check_code code =
  if code < -128 || code > 127 then
    invalid_arg (Printf.sprintf "Bitcell_array: code %d not 8-bit" code)

let write t ~word_row values =
  check_addr word_row;
  if Array.length values > Params.lanes then
    invalid_arg "Bitcell_array.write: more than 128 lanes";
  Array.iter check_code values;
  let row = t.words.(word_row) in
  Array.fill row 0 Params.lanes 0;
  Array.blit values 0 row 0 (Array.length values)

let read t ~word_row =
  check_addr word_row;
  Array.copy t.words.(word_row)

let read_lane t ~word_row ~lane =
  check_addr word_row;
  if lane < 0 || lane >= Params.lanes then
    invalid_arg "Bitcell_array.read_lane: bad lane";
  t.words.(word_row).(lane)

let normalized code = float_of_int code /. 128.0
let quantize = Promise_core.Quant.quantize8

let row_unsafe t ~word_row =
  check_addr word_row;
  t.words.(word_row)

let aread t ~word_row ~swing ~noise ~lut =
  check_addr word_row;
  let row = t.words.(word_row) in
  Array.map
    (fun code ->
      let ideal = normalized code in
      let shaped = Promise_analog.Lut.apply lut ideal in
      Promise_analog.Noise.aread noise ~swing shaped)
    row

let msb_lsb_view t ~word_row ~lane =
  let code = read_lane t ~word_row ~lane in
  let unsigned = code land 0xff in
  (unsigned lsr 4, unsigned land 0xf)
