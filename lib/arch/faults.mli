(** Hardware fault models for failure-injection testing.

    The paper's error analysis covers process-variation noise (random)
    and transfer-curve non-idealities (deterministic, re-trainable).
    This module adds the *hard* failure modes a deployed part can
    develop, so error paths and graceful-degradation behaviour are
    testable. A fault descriptor is a value: seedable (the X-REG
    transient model carries its own RNG seed), composable
    ({!compose}), and attached to a bank with
    {!Bank.set_faults}. Builders validate their parameters and reject
    out-of-range values with a typed {!Promise_core.Error.t}. *)

type transient = { seed : int; rate : float }
(** A seeded Bernoulli process: each X-REG element read flips one
    random bit with probability [rate]. *)

type t

(** No faults. *)
val none : t

val is_none : t -> bool
val equal : t -> t -> bool

(** [with_stuck_lane t ~lane ~code] — lane [lane] of every word row
    reads as [code] on the analog path. [Error] when [lane] is outside
    the 128-lane bank width or [code] is not a signed 8-bit value
    (-128..127). *)
val with_stuck_lane :
  t -> lane:int -> code:int -> (t, Promise_core.Error.t) result

(** [with_dead_lane t ~lane] — the lane's bit-cell column is dead: it
    contributes 0 to every analog read. *)
val with_dead_lane : t -> lane:int -> (t, Promise_core.Error.t) result

(** [with_dead_bank t] — the whole bank is dead: analog reads are all
    zero and the digital read path returns zeros too. Recovery must
    exclude the bank. *)
val with_dead_bank : t -> t

(** [with_adc_offset t offset] — every ADC conversion is shifted by
    [offset] (in normalized analog units) before quantization. *)
val with_adc_offset : t -> float -> t

(** [with_dead_adc_units t n] — [n] of the bank's 8 ADC units are
    disabled. Values are unaffected; multi-iteration Tasks stall
    (visible as {!Trace.task_record.stall_cycles}). [Error] unless
    [0 <= n <= 8]. *)
val with_dead_adc_units : t -> int -> (t, Promise_core.Error.t) result

(** [with_xreg_flips t ~seed ~rate] — transient single-bit upsets on
    X-REG reads: each element read flips one random bit with
    probability [rate], drawn from a generator seeded by [seed].
    [Error] unless [rate] is in [0, 1]. *)
val with_xreg_flips :
  t -> seed:int -> rate:float -> (t, Promise_core.Error.t) result

(** [with_swing_drift t d] — the effective bit-line swing degrades by
    [d] codes (aging): a Task programmed at SWING [s] behaves like
    [max 0 (s - d)], raising the read-noise sigma. [Error] unless
    [0 <= d <= 7]. *)
val with_swing_drift : t -> int -> (t, Promise_core.Error.t) result

(** [with_leakage_mult t m] — bit-line leakage is [m] times the nominal
    0.6%/ns rate (excess droop during idle pipeline slots). [Error]
    unless [m >= 1]. *)
val with_leakage_mult : t -> float -> (t, Promise_core.Error.t) result

(** [compose a b] — both fault sets at once; where they conflict
    (stuck codes, flip parameters), [b] wins. Offsets add, drifts add
    (saturating at 7), leakage multipliers multiply. *)
val compose : t -> t -> t

(** {2 Accessors} *)

val stuck_lanes : t -> (int * int) list
(** Sorted by lane. *)

val dead_lanes : t -> int list
val is_dead_bank : t -> bool
val adc_offset : t -> float
val dead_adc_units : t -> int
val xreg_flip : t -> transient option
val swing_drift : t -> int
val leakage_mult : t -> float

(** [faulty_lanes t] — every stuck or dead lane, sorted. *)
val faulty_lanes : t -> int list

(** [adc_units_available t] — [8 - dead_adc_units]. *)
val adc_units_available : t -> int

(** {2 Application (used by {!Bank})} *)

(** [apply_stuck t values] — overwrite stuck lanes with their stuck
    (normalized) values and dead lanes with 0; a dead bank zeroes the
    whole vector. Returns [values] itself when no lane faults.
    Idempotent. *)
val apply_stuck : t -> float array -> float array

(** [effective_swing t ~swing] — [max 0 (swing - drift)]. *)
val effective_swing : t -> swing:int -> int

(** [effective_idle_ns t ~idle_ns] — idle time scaled by the leakage
    multiplier (equivalent to scaling the leakage rate). *)
val effective_idle_ns : t -> idle_ns:float -> float

(** {2 Textual form} *)

(** [to_string t] — a canonical one-line description; {!of_string}
    inverts it exactly. *)
val to_string : t -> string

val of_string : string -> (t, Promise_core.Error.t) result
val pp : Format.formatter -> t -> unit
