(** Execution traces: per-task operation/cycle accounting.

    The energy model (lib/energy) consumes these records to evaluate
    Eq. (6) of the paper without re-simulating. *)

type task_record = {
  task : Promise_isa.Task.t;
  iterations : int;
  banks : int;
  tp : int;  (** pipeline clock period used, cycles *)
  fill_cycles : int;
  cycles : int;  (** total task duration, cycles *)
  adc_conversions : int;  (** per bank *)
  crossbank_transfers : int;  (** 8-bit words moved on the rail *)
  th_ops : int;  (** Class-4 operations executed (on bank 0) *)
  stall_cycles : int;
      (** excess ADC stalls attributable to disabled ADC units
          ({!Faults.with_dead_adc_units}); 0 on a healthy group *)
}

type t = {
  mutable records : task_record list;  (** newest first *)
  mutable total_cycles : int;
}

val create : unit -> t
val record : t -> task_record -> unit

val records_in_order : t -> task_record list
(** Oldest first. *)

val total_cycles : t -> int
val total_task_iterations : t -> int
val total_adc_conversions : t -> int

(** Wall-clock time in ns ([total_cycles * cycle_ns]). *)
val elapsed_ns : t -> float

val pp : Format.formatter -> t -> unit

(** [to_csv t] — one line per task record (oldest first) with a header:
    [class1,class2,class4,swing,iterations,banks,tp,fill,cycles,adc,rail,th,stalls].
    For offline analysis/plotting of executions. *)
val to_csv : t -> string
