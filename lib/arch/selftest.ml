open Promise_isa
module A = Promise_analog
module E = Promise_core.Error

type kind =
  | Stuck_lane of { lane : int; code : int }
  | Dead_lane of { lane : int }
  | Dead_bank
  | Adc_offset of { offset : float }
  | Dead_adc of { stall_cycles : int }
  | Xreg_transient of { events : int; trials : int }
  | Swing_degraded of { measured_sigma : float; expected_sigma : float }
  | Excess_leakage of { ratio : float }

type finding = { bank : int; kind : kind }
type report = { findings : finding list; banks_tested : int }

let kind_name = function
  | Stuck_lane _ -> "stuck-lane"
  | Dead_lane _ -> "dead-lane"
  | Dead_bank -> "dead-bank"
  | Adc_offset _ -> "adc-offset"
  | Dead_adc _ -> "dead-adc"
  | Xreg_transient _ -> "xreg-transient"
  | Swing_degraded _ -> "swing-degraded"
  | Excess_leakage _ -> "excess-leakage"

let pp_kind ppf = function
  | Stuck_lane { lane; code } ->
      Format.fprintf ppf "stuck-lane lane=%d code=%d" lane code
  | Dead_lane { lane } -> Format.fprintf ppf "dead-lane lane=%d" lane
  | Dead_bank -> Format.fprintf ppf "dead-bank"
  | Adc_offset { offset } -> Format.fprintf ppf "adc-offset %.4f" offset
  | Dead_adc { stall_cycles } ->
      if stall_cycles = max_int then Format.fprintf ppf "dead-adc (no units)"
      else Format.fprintf ppf "dead-adc stalls=%d" stall_cycles
  | Xreg_transient { events; trials } ->
      Format.fprintf ppf "xreg-transient %d/%d" events trials
  | Swing_degraded { measured_sigma; expected_sigma } ->
      Format.fprintf ppf "swing-degraded sigma=%.4f (expected %.4f)"
        measured_sigma expected_sigma
  | Excess_leakage { ratio } ->
      Format.fprintf ppf "excess-leakage ratio=%.3f" ratio

let pp_finding ppf f = Format.fprintf ppf "bank %d: %a" f.bank pp_kind f.kind

let pp ppf r =
  Format.fprintf ppf "@[<v>selftest: %d banks, %d findings@,"
    r.banks_tested
    (List.length r.findings);
  List.iter (fun f -> Format.fprintf ppf "  %a@," pp_finding f) r.findings;
  Format.fprintf ppf "@]"

let findings_for r ~bank =
  List.filter_map
    (fun f -> if f.bank = bank then Some f.kind else None)
    r.findings

(* Probe word rows (overwritten per bank): *)
let row_pos = 0 (* all-lanes +96 *)
let row_neg = 1 (* all-lanes -96 *)
let row_zero = 2 (* all zeros: noiseless ADC canary *)
let row_echo = 3 (* +96, subtracted against an X-REG echo *)
let row_alt = 4 (* alternating +-96: zero-mean noise probe *)
let probe_code = 96

let probe_task ?(rpt = 0) ~class1 ~asd ~avd ~adc ~w_addr () =
  let op_param = { Op_param.default with Op_param.w_addr } in
  Task.make ~op_param ~rpt_num:rpt ~multi_bank:0 ~class1
    ~class2:{ Opcode.asd; avd }
    ~class3:(if adc then Opcode.C3_adc else Opcode.C3_none)
    ~class4:Opcode.C4_accumulate ()

let launch ?(adc_gain = 1.0) ~bank task =
  {
    Machine.task;
    bank_group = bank;
    active_lanes = Params.lanes;
    adc_gain;
    th =
      {
        Th_unit.op = Opcode.C4_accumulate;
        acc_num = 0;
        threshold = 0.0;
        gain = 1.0;
        des = Opcode.Des_output_buffer;
      };
    dest_xreg = Params.xreg_depth - 1;
  }

let write_row m ~bank ~word_row codes =
  Bitcell_array.write (Bank.array (Machine.bank m bank)) ~word_row codes

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  let m = mean l in
  let var = mean (List.map (fun v -> (v -. m) ** 2.0) l) in
  sqrt var

(* One per-lane analog read of [w_addr]: the [avd = false] + ADC
   composition digitizes every lane individually. *)
let read_lanes m ~bank ~w_addr =
  let task =
    probe_task ~class1:Opcode.C1_aread ~asd:Opcode.Asd_none ~avd:false
      ~adc:true ~w_addr ()
  in
  match Machine.execute m (launch ~bank task) with
  | Error e -> Error e
  | Ok r -> (
      match r.Machine.digital with
      | [ v ] -> Ok (Array.map A.Adc.dequantize v)
      | _ ->
          E.fail ~layer:"selftest" ~code:E.Internal
            "per-lane probe returned no digital vector")

(* One aggregated (aVD) read of [w_addr], returning the single emitted
   sample. *)
let read_sample ?adc_gain m ~bank ~w_addr =
  let task =
    probe_task ~class1:Opcode.C1_aread ~asd:Opcode.Asd_none ~avd:true ~adc:true
      ~w_addr ()
  in
  match Machine.execute m (launch ?adc_gain ~bank task) with
  | Error e -> Error e
  | Ok r -> (
      match r.Machine.emitted with
      | [ v ] -> Ok v
      | _ ->
          E.fail ~layer:"selftest" ~code:E.Internal
            "aVD probe emitted no sample")

let rec repeat n f acc =
  if n = 0 then Ok (List.rev acc)
  else match f () with Error e -> Error e | Ok v -> repeat (n - 1) f (v :: acc)

let ( let* ) = Result.bind

(* --- Probe 1: stuck/dead lanes and dead banks. ------------------------ *)

(* Two opposing full-scale patterns: a healthy lane swings by ~1.5
   between them; a stuck lane does not move; a dead lane (or stuck at
   zero) sits at ~0. Repetition averages the read noise down. *)
let probe_lanes m ~bank ~trials =
  let reps = max 4 (trials / 8) in
  let* reads_pos =
    repeat reps (fun () -> read_lanes m ~bank ~w_addr:row_pos) []
  in
  let* reads_neg =
    repeat reps (fun () -> read_lanes m ~bank ~w_addr:row_neg) []
  in
  let lane_mean reads l = mean (List.map (fun v -> v.(l)) reads) in
  let faulty = ref [] in
  let n_dead = ref 0 in
  for l = Params.lanes - 1 downto 0 do
    let mp = lane_mean reads_pos l and mn = lane_mean reads_neg l in
    if Float.abs (mp -. mn) < 0.4 then begin
      let code =
        int_of_float (Float.round ((mp +. mn) /. 2.0 *. 128.0))
      in
      if abs code <= 1 then begin
        incr n_dead;
        faulty := Dead_lane { lane = l } :: !faulty
      end
      else faulty := Stuck_lane { lane = l; code } :: !faulty
    end
  done;
  if !n_dead = Params.lanes then begin
    (* Every lane at zero: distinguish a dead bank (digital path also
       zero) from 128 dead columns. *)
    let task =
      probe_task ~class1:Opcode.C1_read ~asd:Opcode.Asd_none ~avd:false
        ~adc:false ~w_addr:row_pos ()
    in
    let* r = Machine.execute m (launch ~bank task) in
    let all_zero =
      match r.Machine.digital with
      | [ v ] -> Array.for_all (fun c -> c = 0) v
      | _ -> false
    in
    if all_zero then Ok [ Dead_bank ] else Ok !faulty
  end
  else Ok !faulty

(* --- Probe 2: ADC conversion offset. ---------------------------------- *)

(* Zero weights make the read noise sigma zero (it scales with |w|), so
   any non-zero conversion of an all-zeros row is ADC offset — after
   accounting for the contribution of already-localized stuck lanes. *)
let probe_adc_offset m ~bank ~lane_faults =
  let reps = 4 in
  let* samples =
    repeat reps (fun () -> read_sample m ~bank ~w_addr:row_zero) []
  in
  let stuck_contribution =
    List.fold_left
      (fun acc k ->
        match k with
        | Stuck_lane { code; _ } -> acc +. (float_of_int code /. 128.0)
        | _ -> acc)
      0.0 lane_faults
    /. float_of_int Params.lanes
  in
  let est = mean samples -. stuck_contribution in
  if Float.abs est > 1.5 *. A.Adc.lsb then Ok (Some (Adc_offset { offset = est }))
  else Ok None

(* --- Probe 3: dead ADC units (pipeline stalls). ----------------------- *)

let probe_dead_adc m ~bank =
  let task =
    probe_task ~rpt:15 ~class1:Opcode.C1_aread ~asd:Opcode.Asd_none ~avd:true
      ~adc:true ~w_addr:0 ()
  in
  match Machine.execute m (launch ~bank task) with
  | Error e when e.E.code = E.Fault ->
      (* every unit dead: the machine refuses to digitize at all *)
      Ok (Some (Dead_adc { stall_cycles = max_int }))
  | Error e -> Error e
  | Ok r ->
      let s = r.Machine.record.Trace.stall_cycles in
      if s > 0 then Ok (Some (Dead_adc { stall_cycles = s })) else Ok None

(* --- Probe 4: X-REG transient upsets. --------------------------------- *)

(* Echo test: X-REG loaded with the same codes as the weight row, so
   aSUBT reads (w - x)/2 ~ 0 per lane. A flipped high bit displaces one
   lane by >= 0.25 — far outside the ~0.03 noise sigma. *)
let probe_xreg m ~bank ~trials ~lane_faults =
  let codes = Array.make Params.lanes probe_code in
  Xreg.load (Bank.xreg (Machine.bank m bank)) ~index:0 codes;
  let suspect = Array.make Params.lanes false in
  List.iter
    (fun k ->
      match k with
      | Stuck_lane { lane; _ } | Dead_lane { lane } -> suspect.(lane) <- true
      | _ -> ())
    lane_faults;
  let task =
    probe_task ~class1:Opcode.C1_asubt ~asd:Opcode.Asd_none ~avd:false
      ~adc:true ~w_addr:row_echo ()
  in
  let events = ref 0 in
  let rec go n =
    if n = 0 then Ok ()
    else
      let* r = Machine.execute m (launch ~bank task) in
      (match r.Machine.digital with
      | [ v ] ->
          Array.iteri
            (fun l c ->
              if
                (not suspect.(l))
                && Float.abs (A.Adc.dequantize c) > 0.15
              then incr events)
            v
      | _ -> ());
      go (n - 1)
  in
  let* () = go trials in
  if !events >= 2 then Ok (Some (Xreg_transient { events = !events; trials }))
  else Ok None

(* --- Probe 5: swing degradation (read-noise sigma). ------------------- *)

(* A zero-mean pattern aggregated over 128 lanes has sigma
   [noise_factor swing / sqrt 128]; the x16 ADC gain drops the
   quantization floor below it. Swing drift raises the factor
   geometrically, so a 2.5x threshold flags a drift of 3+ codes. *)
let probe_swing m ~bank ~trials ~lane_faults =
  let expected =
    A.Noise.aggregate_sigma ~swing:A.Swing.max_code ~n:Params.lanes
  in
  if lane_faults <> [] then Ok None
    (* stuck columns bias the mean, not the sigma, but keep the probe
       conservative: a spared bank is re-tested after repair *)
  else
    let* samples =
      repeat trials (fun () -> read_sample ~adc_gain:16.0 m ~bank ~w_addr:row_alt) []
    in
    let measured = stddev samples in
    if measured > 2.5 *. expected then
      Ok (Some (Swing_degraded { measured_sigma = measured; expected_sigma = expected }))
    else Ok None

(* --- Probe 6: excess bit-line leakage. -------------------------------- *)

(* The aREAD + square + aVD composition has TP 8 against a Class-1
   delay of 5, so the S1 value idles 3 cycles before S2 consumes it —
   long enough for droop to be visible. Comparing against the nominal
   droop isolates a leakage-rate excess. *)
let probe_leakage m ~bank ~lane_faults =
  let reps = 8 in
  let task =
    probe_task ~class1:Opcode.C1_aread ~asd:Opcode.Asd_square ~avd:true
      ~adc:true ~w_addr:row_pos ()
  in
  let* samples =
    repeat reps
      (fun () ->
        let* r = Machine.execute m (launch ~bank task) in
        match r.Machine.emitted with
        | [ v ] -> Ok v
        | _ ->
            E.fail ~layer:"selftest" ~code:E.Internal
              "leakage probe emitted no sample")
      []
  in
  let idle_ns =
    float_of_int (Timing.task_tp task - Timing.class1_delay task.Task.class1)
    *. Params.cycle_ns
  in
  let droop = A.Leakage.bitline ~idle_ns 1.0 in
  let lane_value k =
    match k with
    | Some (Stuck_lane { code; _ }) -> float_of_int code /. 128.0
    | Some (Dead_lane _) -> 0.0
    | _ -> float_of_int probe_code /. 128.0
  in
  let fault_of = Array.make Params.lanes None in
  List.iter
    (fun k ->
      match k with
      | Stuck_lane { lane; _ } | Dead_lane { lane } ->
          fault_of.(lane) <- Some k
      | _ -> ())
    lane_faults;
  let expected =
    let sum = ref 0.0 in
    for l = 0 to Params.lanes - 1 do
      sum := !sum +. ((lane_value fault_of.(l) *. droop) ** 2.0)
    done;
    !sum /. float_of_int Params.lanes
  in
  let measured = mean samples in
  let ratio = if expected = 0.0 then 1.0 else measured /. expected in
  if ratio < 0.9 then Ok (Some (Excess_leakage { ratio })) else Ok None

(* ---------------------------------------------------------------------- *)

let noise_enabled m = (Machine.config m).Machine.noise_seed <> None

let leakage_enabled m =
  match (Machine.config m).Machine.profile with
  | Bank.Silicon | Bank.Custom { leakage = true; _ } -> true
  | Bank.Ideal | Bank.Custom { leakage = false; _ } -> false

let test_bank m ~bank ~trials =
  let pos = Array.make Params.lanes probe_code in
  let neg = Array.make Params.lanes (-probe_code) in
  let alt =
    Array.init Params.lanes (fun l ->
        if l mod 2 = 0 then probe_code else -probe_code)
  in
  write_row m ~bank ~word_row:row_pos pos;
  write_row m ~bank ~word_row:row_neg neg;
  write_row m ~bank ~word_row:row_zero (Array.make Params.lanes 0);
  write_row m ~bank ~word_row:row_echo pos;
  write_row m ~bank ~word_row:row_alt alt;
  let* lane_faults = probe_lanes m ~bank ~trials in
  if List.mem Dead_bank lane_faults then Ok [ Dead_bank ]
  else
    let opt o rest = match o with Some k -> k :: rest | None -> rest in
    let* offset = probe_adc_offset m ~bank ~lane_faults in
    let* dead_adc = probe_dead_adc m ~bank in
    let* transient = probe_xreg m ~bank ~trials ~lane_faults in
    let* swing =
      if noise_enabled m then probe_swing m ~bank ~trials ~lane_faults
      else Ok None
    in
    let* leak =
      if leakage_enabled m then probe_leakage m ~bank ~lane_faults else Ok None
    in
    Ok (lane_faults @ opt offset (opt dead_adc (opt transient (opt swing (opt leak [])))))

let run ?(trials = 32) m =
  if trials < 4 then
    E.fail ~layer:"selftest" ~code:E.Invalid_operand "trials must be >= 4"
  else
    let n = Machine.n_banks m in
    let rec go bank acc =
      if bank = n then Ok { findings = List.rev acc; banks_tested = n }
      else
        (* A bank with no working ADC unit cannot complete any probe
           conversion: the first probe surfaces the machine-layer Fault
           error, which is itself the diagnosis. *)
        let* kinds =
          match test_bank m ~bank ~trials with
          | Error e when e.E.code = E.Fault ->
              Ok [ Dead_adc { stall_cycles = max_int } ]
          | r -> r
        in
        let acc =
          List.fold_left (fun acc kind -> { bank; kind } :: acc) acc kinds
        in
        go (bank + 1) acc
    in
    go 0 []
