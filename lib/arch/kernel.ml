(* Compiled per-task iteration kernels for the analog datapath.

   [specialize] hoists everything [Bank.run_iteration] recomputes per
   iteration — effective swing and its noise factor, LUT selection, the
   idle-leakage exponential, stuck/dead lane overrides, charge-share
   membership, ADC constants, X addressing — into a flat record, with
   the aREAD transfer curve and noise sigma pre-sampled per 8-bit code
   (the aREAD input is always [code / 128], so a 256-entry table is
   exact, not an approximation). [sample_into] then runs
   class1 → leakage → ASD → charge-share → ADC as tight loops over
   preallocated scratch buffers: zero minor-heap allocations per
   iteration in the steady state (noise and transient faults draw
   through the RNG, whose Box-Muller cache allocates; the no-noise path
   is allocation-free, which the Gc test in test_kernels asserts).

   BIT-IDENTITY CONTRACT: every float operation below reproduces the
   scalar path's arithmetic in the scalar path's order, and every RNG
   stream (the bank's noise stream, the transient-upset stream) is the
   bank's own object consumed in ascending lane order exactly as
   [Bitcell_array.aread] / [Bank.xreg_normalized] consume it. The
   QCheck differential suite (test_kernels) holds Fused ≡ Reference
   over random tasks, profiles, faults and lane masks; any edit here
   or in Bank/Bitcell_array/Faults must keep that suite green. *)

open Promise_isa
module A = Promise_analog

type c1_kind = K_aread | K_asubt | K_aadd

type asd_kind =
  | S_none
  | S_compare
  | S_absolute
  | S_square
  | S_sign_mult
  | S_unsign_mult

(* The launch shape the kernel was specialized for, kept for cache
   validation ([matches]). *)
type spec = {
  task : Task.t;
  active_lanes : int;
  adc_gain : float;
  lane_mask : bool array option;
  faults : Faults.t;
}

type fused = {
  array : Bitcell_array.t;
  xreg : Xreg.t;
  c1 : c1_kind;
  asd : asd_kind;
  (* per-code pre-samples: index [code + 128] *)
  shaped : float array;  (* aREAD LUT of code/128 *)
  sigma : float array;  (* |shaped| × noise factor at effective swing *)
  noise_rng : A.Rng.t option;
  flip_rng : A.Rng.t option;  (* X-REG transient upsets *)
  flip_rate : float;
  asd_tbl : float array;  (* ASD transfer-curve entries; [||] when none *)
  has_leak : bool;
  leak : float;  (* idle-slot droop factor, paid once per task *)
  override_any : bool;
  override_on : bool array;  (* stuck/dead lane replacement, post-noise *)
  override_val : float array;
  acc_on : bool array;  (* charge-share membership per physical lane *)
  acc_empty : bool;
  divisor : float;
  w_addr : int;
  x_base : int;
  x_period : int;
  adc_gain : float;
  adc_offset : float;
  (* preallocated scratch: the zero-allocation working set *)
  wbuf : float array;  (* class-1 / ASD value per lane *)
  gbuf : float array;  (* standard normals, one batch draw per iteration *)
  xbuf : float array;  (* normalized X operand per lane *)
  sbuf : float array;  (* [0] = charge-share accumulator *)
  out1 : float array;  (* [0] = sample, for the [step] wrapper *)
}

(* Per-kernel batch scratch (lazy): the structure-of-arrays working set
   of [sample_batch_into]. [wt]/[st]/[xt] are per-(iteration × lane)
   tables hoisted once per batch call — the aREAD transfer value, its
   noise sigma and the normalized X operand are all invariant across
   the decisions of a batch (no cross-decision state feedback on the
   batched path) — and [nplane] is the bigarray noise plane one
   [Rng.gaussian_fill_ba] call fills per tile of decisions. *)
type bstate = {
  mutable nplane : A.Rng.ba;
  mutable wt : float array;  (* shaped value per (iteration, lane) *)
  mutable st : float array;  (* noise sigma per (iteration, lane) *)
  mutable xt : float array;  (* normalized X per (iteration, lane) *)
  mutable table_iters : int;  (* iterations the tables have room for *)
}

type impl = Fused of fused | Passthrough

type t = {
  spec : spec;
  bank : Bank.t;
  flip_stream : A.Rng.t option;  (* object captured at specialization *)
  impl : impl;
  bstate : bstate;
}

let is_fused t = match t.impl with Fused _ -> true | Passthrough -> false

let empty_ba = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 0

let fresh_bstate () =
  { nplane = empty_ba; wt = [||]; st = [||]; xt = [||]; table_iters = 0 }

let specialize ?lane_mask bank ~(task : Task.t) ~active_lanes ~adc_gain =
  if active_lanes < 1 || active_lanes > Params.lanes then
    invalid_arg "Kernel.specialize: active_lanes out of [1, 128]";
  if adc_gain <= 0.0 then invalid_arg "Kernel.specialize: adc_gain <= 0";
  let faults = Bank.faults bank in
  let spec = { task; active_lanes; adc_gain; lane_mask; faults } in
  let flip_stream = Bank.transient_rng bank in
  let fusable =
    (match task.class1 with
    | Opcode.C1_aread | Opcode.C1_asubt | Opcode.C1_aadd -> true
    | Opcode.C1_none | Opcode.C1_write | Opcode.C1_read -> false)
    && task.class2.Opcode.avd && Task.uses_adc task
  in
  if not fusable then
    { spec; bank; flip_stream; impl = Passthrough; bstate = fresh_bstate () }
  else begin
    let p = task.op_param in
    let profile = Bank.profile bank in
    let c1 =
      match task.class1 with
      | Opcode.C1_aread -> K_aread
      | Opcode.C1_asubt -> K_asubt
      | Opcode.C1_aadd -> K_aadd
      | _ -> assert false
    in
    let asd =
      match task.class2.Opcode.asd with
      | Opcode.Asd_none -> S_none
      | Opcode.Asd_compare -> S_compare
      | Opcode.Asd_absolute -> S_absolute
      | Opcode.Asd_square -> S_square
      | Opcode.Asd_sign_mult -> S_sign_mult
      | Opcode.Asd_unsign_mult -> S_unsign_mult
    in
    let swing = Faults.effective_swing faults ~swing:p.Op_param.swing in
    let aread_lut =
      Bank.lut_for_profile profile (fun () -> A.Lut.Silicon.aread)
    in
    (* the aREAD input domain is exactly the 256 codes: pre-sample the
       curve and the per-code sigma with the scalar path's own
       arithmetic, so table lookups are bit-identical to it *)
    let shaped =
      Array.init 256 (fun i ->
          A.Lut.apply aread_lut (float_of_int (i - 128) /. 128.0))
    in
    let nf = A.Swing.noise_factor swing in
    let sigma = Array.init 256 (fun i -> Float.abs shaped.(i) *. nf) in
    let asd_tbl =
      let tbl select = A.Lut.table (Bank.lut_for_profile profile select) in
      match asd with
      | S_none -> [||]
      | S_compare -> tbl (fun () -> A.Lut.Silicon.compare_)
      | S_absolute -> tbl (fun () -> A.Lut.Silicon.absolute)
      | S_square -> tbl (fun () -> A.Lut.Silicon.square)
      | S_sign_mult | S_unsign_mult -> tbl (fun () -> A.Lut.Silicon.mult)
    in
    let has_leak =
      match profile with
      | Bank.Ideal | Bank.Custom { leakage = false; _ } -> false
      | Bank.Silicon | Bank.Custom { leakage = true; _ } -> true
    in
    let leak =
      if not has_leak then 1.0
      else
        let tp = Timing.task_tp task in
        let idle =
          float_of_int (max 0 (tp - Timing.class1_delay task.class1))
          *. Params.cycle_ns
        in
        A.Leakage.bitline_factor
          ~idle_ns:(Faults.effective_idle_ns faults ~idle_ns:idle)
    in
    let override_on = Array.make Params.lanes false in
    let override_val = Array.make Params.lanes 0.0 in
    let override_any =
      if Faults.is_dead_bank faults then begin
        Array.fill override_on 0 Params.lanes true;
        true
      end
      else begin
        (* stuck first, dead second: the scalar [Faults.apply_stuck]
           order, so a lane both stuck and dead ends up dead *)
        List.iter
          (fun (lane, code) ->
            if lane < Params.lanes then begin
              override_on.(lane) <- true;
              override_val.(lane) <- float_of_int code /. 128.0
            end)
          (Faults.stuck_lanes faults);
        List.iter
          (fun lane ->
            if lane < Params.lanes then begin
              override_on.(lane) <- true;
              override_val.(lane) <- 0.0
            end)
          (Faults.dead_lanes faults);
        Faults.stuck_lanes faults <> [] || Faults.dead_lanes faults <> []
      end
    in
    let acc_on = Array.make Params.lanes false in
    let acc_empty, divisor =
      match lane_mask with
      | None ->
          Array.fill acc_on 0 active_lanes true;
          (false, float_of_int active_lanes)
      | Some mask ->
          let n = ref 0 in
          Array.iteri
            (fun i on ->
              if on && i < Params.lanes then begin
                acc_on.(i) <- true;
                incr n
              end)
            mask;
          (!n = 0, float_of_int !n)
    in
    let flip_rng, flip_rate =
      match (Faults.xreg_flip faults, flip_stream) with
      | Some { Faults.rate; _ }, (Some _ as rng) -> (rng, rate)
      | _ -> (None, 0.0)
    in
    let x_base =
      match asd with
      | S_sign_mult | S_unsign_mult -> p.Op_param.x_addr2
      | _ -> p.Op_param.x_addr1
    in
    {
      spec;
      bank;
      flip_stream;
      bstate = fresh_bstate ();
      impl =
        Fused
          {
            array = Bank.array bank;
            xreg = Bank.xreg bank;
            c1;
            asd;
            shaped;
            sigma;
            noise_rng = A.Noise.rng (Bank.noise bank);
            flip_rng;
            flip_rate;
            asd_tbl;
            has_leak;
            leak;
            override_any;
            override_on;
            override_val;
            acc_on;
            acc_empty;
            divisor;
            w_addr = p.Op_param.w_addr;
            x_base;
            x_period = p.Op_param.x_prd + 1;
            adc_gain;
            adc_offset = Faults.adc_offset faults;
            wbuf = Array.make Params.lanes 0.0;
            gbuf = Array.make Params.lanes 0.0;
            xbuf = Array.make Params.lanes 0.0;
            sbuf = Array.make 1 0.0;
            out1 = Array.make 1 0.0;
          };
    }
  end

let matches t bank ~task ~active_lanes ~adc_gain ~lane_mask =
  t.bank == bank
  && Task.equal t.spec.task task
  && t.spec.active_lanes = active_lanes
  && Float.equal t.spec.adc_gain adc_gain
  && (match (t.spec.lane_mask, lane_mask) with
     | None, None -> true
     | Some a, Some b -> a == b || a = b
     | None, Some _ | Some _, None -> false)
  && Faults.equal t.spec.faults (Bank.faults bank)
  (* [set_faults] re-seeds the transient stream even for an equal fault
     record; the kernel must consume the same stream object as the
     scalar path would *)
  && (match (t.flip_stream, Bank.transient_rng bank) with
     | None, None -> true
     | Some a, Some b -> a == b
     | None, Some _ | Some _, None -> false)

(* Load the normalized X operand (with the transient single-bit-upset
   model of [Bank.xreg_normalized] — same stream, same per-lane draw
   order) into the [xbuf] scratch. *)
let load_x f ~iteration =
  let xrow =
    Xreg.row_unsafe f.xreg ~index:((f.x_base + iteration) mod f.x_period)
  in
  match f.flip_rng with
  | None ->
      for lane = 0 to Params.lanes - 1 do
        Array.unsafe_set f.xbuf lane
          (float_of_int (Array.unsafe_get xrow lane) /. 128.0)
      done
  | Some rng ->
      let rate = f.flip_rate in
      for lane = 0 to Params.lanes - 1 do
        let c = Array.unsafe_get xrow lane in
        let c =
          if A.Rng.float rng < rate then begin
            let u = (c + 256) land 0xff in
            let u = u lxor (1 lsl A.Rng.int rng 8) in
            if u > 127 then u - 256 else u
          end
          else c
        in
        Array.unsafe_set f.xbuf lane (float_of_int c /. 128.0)
      done

(* NOTE on the inlined interpolation in the ASD loops below: it is
   [Lut.apply_raw] spelled out (clamp, position, floor, lerp — same
   operations, same order) because an out-of-line float-returning call
   would box its result on every lane. The clamp is written with
   comparisons instead of [Float.min]/[Float.max] for the same reason;
   for every non-NaN input the result is bitwise the same, and the
   analog chain can produce no NaN. *)

let sample_into t ~iteration ~dst ~at =
  match t.impl with
  | Passthrough -> invalid_arg "Kernel.sample_into: kernel is not fused"
  | Fused f ->
      let lanes = Params.lanes in
      let word_row = (f.w_addr + iteration) mod Params.word_rows in
      let row = Bitcell_array.row_unsafe f.array ~word_row in
      (* S1 aREAD: per-code table + the bank's own noise stream, drawn
         for all 128 lanes in lane order exactly like the scalar path *)
      (match f.noise_rng with
      | None ->
          for lane = 0 to lanes - 1 do
            let code = Array.unsafe_get row lane in
            Array.unsafe_set f.wbuf lane
              (Array.unsafe_get f.shaped (code + 128))
          done
      | Some rng ->
          (* one batched draw: consumes the stream exactly like a
             per-lane [gaussian_scaled] loop, without boxing a float
             per lane (the scaling below is [gaussian_scaled]'s own
             [mu +. sigma *. g], applied after the fact) *)
          A.Rng.gaussian_fill rng f.gbuf;
          for lane = 0 to lanes - 1 do
            let idx = Array.unsafe_get row lane + 128 in
            Array.unsafe_set f.wbuf lane
              (Array.unsafe_get f.shaped idx
              +. (Array.unsafe_get f.sigma idx *. Array.unsafe_get f.gbuf lane))
          done);
      (* stuck/dead lanes override after noise, like [Faults.apply_stuck] *)
      if f.override_any then
        for lane = 0 to lanes - 1 do
          if Array.unsafe_get f.override_on lane then
            Array.unsafe_set f.wbuf lane (Array.unsafe_get f.override_val lane)
        done;
      (* class-1 combine with X, then idle-slot leakage *)
      (match f.c1 with
      | K_aread ->
          if f.has_leak then
            for lane = 0 to lanes - 1 do
              Array.unsafe_set f.wbuf lane
                (Array.unsafe_get f.wbuf lane *. f.leak)
            done
      | K_asubt ->
          load_x f ~iteration;
          for lane = 0 to lanes - 1 do
            let v =
              (Array.unsafe_get f.wbuf lane -. Array.unsafe_get f.xbuf lane)
              /. 2.0
            in
            Array.unsafe_set f.wbuf lane
              (if f.has_leak then v *. f.leak else v)
          done
      | K_aadd ->
          load_x f ~iteration;
          for lane = 0 to lanes - 1 do
            let v =
              (Array.unsafe_get f.wbuf lane +. Array.unsafe_get f.xbuf lane)
              /. 2.0
            in
            Array.unsafe_set f.wbuf lane
              (if f.has_leak then v *. f.leak else v)
          done);
      (* S2 aSD + S3 charge-share accumulation, fused per lane; the sum
         runs over the membership lanes in ascending order — the same
         subset and order as [Bank.charge_share] *)
      Array.unsafe_set f.sbuf 0 0.0;
      let e = f.asd_tbl in
      let en1 = Array.length e - 1 in
      (match f.asd with
      | S_none ->
          for lane = 0 to lanes - 1 do
            if Array.unsafe_get f.acc_on lane then
              Array.unsafe_set f.sbuf 0
                (Array.unsafe_get f.sbuf 0 +. Array.unsafe_get f.wbuf lane)
          done
      | S_compare ->
          for lane = 0 to lanes - 1 do
            if Array.unsafe_get f.acc_on lane then begin
              let v = Array.unsafe_get f.wbuf lane in
              let v = if v < -1.0 then -1.0 else if v > 1.0 then 1.0 else v in
              let pos = (v +. 1.0) /. 2.0 *. float_of_int en1 in
              let i = int_of_float (Float.floor pos) in
              let u =
                if i >= en1 then Array.unsafe_get e en1
                else
                  let frac = pos -. float_of_int i in
                  ((1.0 -. frac) *. Array.unsafe_get e i)
                  +. (frac *. Array.unsafe_get e (i + 1))
              in
              let s = if u >= 0.0 then 1.0 else 0.0 in
              Array.unsafe_set f.sbuf 0 (Array.unsafe_get f.sbuf 0 +. s)
            end
          done
      | S_absolute ->
          for lane = 0 to lanes - 1 do
            if Array.unsafe_get f.acc_on lane then begin
              let v = Array.unsafe_get f.wbuf lane in
              let v = if v < -1.0 then -1.0 else if v > 1.0 then 1.0 else v in
              let pos = (v +. 1.0) /. 2.0 *. float_of_int en1 in
              let i = int_of_float (Float.floor pos) in
              let u =
                if i >= en1 then Array.unsafe_get e en1
                else
                  let frac = pos -. float_of_int i in
                  ((1.0 -. frac) *. Array.unsafe_get e i)
                  +. (frac *. Array.unsafe_get e (i + 1))
              in
              Array.unsafe_set f.sbuf 0
                (Array.unsafe_get f.sbuf 0 +. Float.abs u)
            end
          done
      | S_square ->
          for lane = 0 to lanes - 1 do
            if Array.unsafe_get f.acc_on lane then begin
              let v = Array.unsafe_get f.wbuf lane in
              let v = if v < -1.0 then -1.0 else if v > 1.0 then 1.0 else v in
              let pos = (v +. 1.0) /. 2.0 *. float_of_int en1 in
              let i = int_of_float (Float.floor pos) in
              let u =
                if i >= en1 then Array.unsafe_get e en1
                else
                  let frac = pos -. float_of_int i in
                  ((1.0 -. frac) *. Array.unsafe_get e i)
                  +. (frac *. Array.unsafe_get e (i + 1))
              in
              Array.unsafe_set f.sbuf 0
                (Array.unsafe_get f.sbuf 0 +. (u *. u))
            end
          done
      | S_sign_mult ->
          load_x f ~iteration;
          for lane = 0 to lanes - 1 do
            if Array.unsafe_get f.acc_on lane then begin
              let v =
                Array.unsafe_get f.wbuf lane *. Array.unsafe_get f.xbuf lane
              in
              let v = if v < -1.0 then -1.0 else if v > 1.0 then 1.0 else v in
              let pos = (v +. 1.0) /. 2.0 *. float_of_int en1 in
              let i = int_of_float (Float.floor pos) in
              let u =
                if i >= en1 then Array.unsafe_get e en1
                else
                  let frac = pos -. float_of_int i in
                  ((1.0 -. frac) *. Array.unsafe_get e i)
                  +. (frac *. Array.unsafe_get e (i + 1))
              in
              Array.unsafe_set f.sbuf 0 (Array.unsafe_get f.sbuf 0 +. u)
            end
          done
      | S_unsign_mult ->
          load_x f ~iteration;
          for lane = 0 to lanes - 1 do
            if Array.unsafe_get f.acc_on lane then begin
              let v =
                Float.abs (Array.unsafe_get f.wbuf lane)
                *. Float.abs (Array.unsafe_get f.xbuf lane)
              in
              let v = if v < -1.0 then -1.0 else if v > 1.0 then 1.0 else v in
              let pos = (v +. 1.0) /. 2.0 *. float_of_int en1 in
              let i = int_of_float (Float.floor pos) in
              let u =
                if i >= en1 then Array.unsafe_get e en1
                else
                  let frac = pos -. float_of_int i in
                  ((1.0 -. frac) *. Array.unsafe_get e i)
                  +. (frac *. Array.unsafe_get e (i + 1))
              in
              Array.unsafe_set f.sbuf 0 (Array.unsafe_get f.sbuf 0 +. u)
            end
          done);
      let cs =
        if f.acc_empty then 0.0 else Array.unsafe_get f.sbuf 0 /. f.divisor
      in
      (* ADC: [Adc.convert] inlined ([quantize] then [dequantize]) *)
      let analog = (f.adc_gain *. cs) +. f.adc_offset in
      let lsb = A.Adc.lsb in
      let half = A.Adc.levels / 2 in
      let code = int_of_float (Float.round (analog /. lsb)) + half in
      let code =
        if code < 0 then 0
        else if code > A.Adc.levels - 1 then A.Adc.levels - 1
        else code
      in
      dst.(at) <- float_of_int (code - half) *. lsb /. f.adc_gain

let step t ~iteration =
  match t.impl with
  | Passthrough ->
      Bank.run_iteration ?lane_mask:t.spec.lane_mask t.bank ~task:t.spec.task
        ~iteration ~active_lanes:t.spec.active_lanes
        ~adc_gain:t.spec.adc_gain
  | Fused f ->
      sample_into t ~iteration ~dst:f.out1 ~at:0;
      Bank.Sample f.out1.(0)

(* ------------------------------------------------------------------ *)
(* Batched sampling                                                     *)
(* ------------------------------------------------------------------ *)

(* [sample_batch_into] processes a whole batch of decisions in one
   pass.  BIT-IDENTITY: the samples written are exactly what [batch]
   back-to-back [sample_into] sweeps (iteration 0..k per decision,
   decision-major) would produce, because

   - the bank's noise stream is consumed decision-major and contiguously
     either way: the sequential path draws one 128-lane vector per
     iteration, so N sequential decisions consume N·iters·128 draws in
     (decision, iteration, lane) order — exactly the order one
     [Rng.gaussian_fill_ba] call lays the batched noise plane out in
     (128-lane vectors are even, so the Box-Muller cache is empty at
     every decision boundary and fills compose);
   - the hoisted per-(iteration × lane) tables hold the same float
     values the scalar path recomputes per decision ([wt] the
     pre-sampled aREAD value with the stuck/dead override folded in as
     (wt, st=0) — override_val +. 0.0·g ≡ override_val for every real
     g — [st] the per-code sigma, [xt] the normalized X), and every
     arithmetic step below applies the scalar path's operations in the
     scalar path's order;
   - transient X-REG upsets draw a data-dependent number of variates,
     so a kernel with a flip stream takes the decision-major scalar
     replay below instead of the table path — same draws, same order,
     still one call.

   The differential QCheck suite (test_batch) holds this function
   ≡ N× sample_into ≡ N× the scalar Reference path over random tasks,
   profiles, faults, masks and batch sizes. *)

(* Max floats in the noise plane tile (128 KiB): big enough to amortize
   the fill-call overhead, small enough to stay cache-resident. *)
let tile_floats = 16384

let prepare_tables (f : fused) (b : bstate) ~iters ~uses_x =
  let lanes = Params.lanes in
  if b.table_iters < iters then begin
    b.wt <- Array.make (iters * lanes) 0.0;
    b.st <- Array.make (iters * lanes) 0.0;
    b.xt <- Array.make (iters * lanes) 0.0;
    b.table_iters <- iters
  end;
  for i = 0 to iters - 1 do
    let row =
      Bitcell_array.row_unsafe f.array
        ~word_row:((f.w_addr + i) mod Params.word_rows)
    in
    let base = i * lanes in
    for lane = 0 to lanes - 1 do
      if f.override_any && Array.unsafe_get f.override_on lane then begin
        (* fold the post-noise stuck/dead override into the tables:
           v +. 0.0 *. g is bitwise v for every finite g *)
        Array.unsafe_set b.wt (base + lane)
          (Array.unsafe_get f.override_val lane);
        Array.unsafe_set b.st (base + lane) 0.0
      end
      else begin
        let idx = Array.unsafe_get row lane + 128 in
        Array.unsafe_set b.wt (base + lane) (Array.unsafe_get f.shaped idx);
        Array.unsafe_set b.st (base + lane) (Array.unsafe_get f.sigma idx)
      end
    done;
    if uses_x then begin
      let xrow =
        Xreg.row_unsafe f.xreg ~index:((f.x_base + i) mod f.x_period)
      in
      for lane = 0 to lanes - 1 do
        Array.unsafe_set b.xt (base + lane)
          (float_of_int (Array.unsafe_get xrow lane) /. 128.0)
      done
    end
  done

let sample_batch_into t ~batch ~(dst : A.Rng.ba) ~off =
  if batch < 1 then invalid_arg "Kernel.sample_batch_into: batch must be >= 1";
  match t.impl with
  | Passthrough -> invalid_arg "Kernel.sample_batch_into: kernel is not fused"
  | Fused f -> (
      let iters = Task.iterations t.spec.task in
      if off < 0 || off + (batch * iters) > Bigarray.Array1.dim dst then
        invalid_arg "Kernel.sample_batch_into: dst slice out of range";
      match f.flip_rng with
      | Some _ ->
          (* transient upsets: data-dependent draw counts — scalar
             fused replay, decision-major (bit-identical by
             construction: it IS the sequential path) *)
          for d = 0 to batch - 1 do
            for i = 0 to iters - 1 do
              sample_into t ~iteration:i ~dst:f.out1 ~at:0;
              dst.{off + (d * iters) + i} <- f.out1.(0)
            done
          done
      | None ->
          let lanes = Params.lanes in
          let b = t.bstate in
          let uses_x =
            match (f.c1, f.asd) with
            | (K_asubt | K_aadd), _ -> true
            | K_aread, (S_sign_mult | S_unsign_mult) -> true
            | K_aread, _ -> false
          in
          prepare_tables f b ~iters ~uses_x;
          let noisy = match f.noise_rng with Some _ -> true | None -> false in
          let per_dec = iters * lanes in
          let tile_d =
            if not noisy then batch else max 1 (tile_floats / per_dec)
          in
          let plane_len = min batch tile_d * per_dec in
          if noisy && Bigarray.Array1.dim b.nplane < plane_len then
            b.nplane <-
              Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
                plane_len;
          let wt = b.wt and st = b.st and xt = b.xt in
          let np = b.nplane in
          let e = f.asd_tbl in
          let en1 = Array.length e - 1 in
          let fen1 = float_of_int en1 in
          let wbuf = f.wbuf and sbuf = f.sbuf in
          let d = ref 0 in
          while !d < batch do
            let td = min tile_d (batch - !d) in
            (match f.noise_rng with
            | Some rng -> A.Rng.gaussian_fill_ba rng np ~len:(td * per_dec)
            | None -> ());
            for dr = 0 to td - 1 do
              let dec = !d + dr in
              for i = 0 to iters - 1 do
                let tb = i * lanes in
                let gb = dr * per_dec + tb in
                (* pass 1 — class-1 value per lane (the scalar chain:
                   noise-apply, override [folded into the tables],
                   X-combine, idle leakage) *)
                (match f.c1 with
                | K_aread ->
                    if noisy then
                      if f.has_leak then
                        for lane = 0 to lanes - 1 do
                          Array.unsafe_set wbuf lane
                            ((Array.unsafe_get wt (tb + lane)
                             +. Array.unsafe_get st (tb + lane)
                                *. np.{gb + lane})
                            *. f.leak)
                        done
                      else
                        for lane = 0 to lanes - 1 do
                          Array.unsafe_set wbuf lane
                            (Array.unsafe_get wt (tb + lane)
                            +. Array.unsafe_get st (tb + lane)
                               *. np.{gb + lane})
                        done
                    else if f.has_leak then
                      for lane = 0 to lanes - 1 do
                        Array.unsafe_set wbuf lane
                          (Array.unsafe_get wt (tb + lane) *. f.leak)
                      done
                    else
                      for lane = 0 to lanes - 1 do
                        Array.unsafe_set wbuf lane
                          (Array.unsafe_get wt (tb + lane))
                      done
                | K_asubt ->
                    for lane = 0 to lanes - 1 do
                      let w =
                        if noisy then
                          Array.unsafe_get wt (tb + lane)
                          +. Array.unsafe_get st (tb + lane) *. np.{gb + lane}
                        else Array.unsafe_get wt (tb + lane)
                      in
                      let v = (w -. Array.unsafe_get xt (tb + lane)) /. 2.0 in
                      Array.unsafe_set wbuf lane
                        (if f.has_leak then v *. f.leak else v)
                    done
                | K_aadd ->
                    for lane = 0 to lanes - 1 do
                      let w =
                        if noisy then
                          Array.unsafe_get wt (tb + lane)
                          +. Array.unsafe_get st (tb + lane) *. np.{gb + lane}
                        else Array.unsafe_get wt (tb + lane)
                      in
                      let v = (w +. Array.unsafe_get xt (tb + lane)) /. 2.0 in
                      Array.unsafe_set wbuf lane
                        (if f.has_leak then v *. f.leak else v)
                    done);
                (* pass 2 — aSD + charge share, the scalar loops with X
                   read from the hoisted table *)
                Array.unsafe_set sbuf 0 0.0;
                (match f.asd with
                | S_none ->
                    for lane = 0 to lanes - 1 do
                      if Array.unsafe_get f.acc_on lane then
                        Array.unsafe_set sbuf 0
                          (Array.unsafe_get sbuf 0
                          +. Array.unsafe_get wbuf lane)
                    done
                | S_compare ->
                    for lane = 0 to lanes - 1 do
                      if Array.unsafe_get f.acc_on lane then begin
                        let v = Array.unsafe_get wbuf lane in
                        let v =
                          if v < -1.0 then -1.0
                          else if v > 1.0 then 1.0
                          else v
                        in
                        let pos = (v +. 1.0) /. 2.0 *. fen1 in
                        let i0 = int_of_float (Float.floor pos) in
                        let u =
                          if i0 >= en1 then Array.unsafe_get e en1
                          else
                            let frac = pos -. float_of_int i0 in
                            ((1.0 -. frac) *. Array.unsafe_get e i0)
                            +. (frac *. Array.unsafe_get e (i0 + 1))
                        in
                        let s = if u >= 0.0 then 1.0 else 0.0 in
                        Array.unsafe_set sbuf 0 (Array.unsafe_get sbuf 0 +. s)
                      end
                    done
                | S_absolute ->
                    for lane = 0 to lanes - 1 do
                      if Array.unsafe_get f.acc_on lane then begin
                        let v = Array.unsafe_get wbuf lane in
                        let v =
                          if v < -1.0 then -1.0
                          else if v > 1.0 then 1.0
                          else v
                        in
                        let pos = (v +. 1.0) /. 2.0 *. fen1 in
                        let i0 = int_of_float (Float.floor pos) in
                        let u =
                          if i0 >= en1 then Array.unsafe_get e en1
                          else
                            let frac = pos -. float_of_int i0 in
                            ((1.0 -. frac) *. Array.unsafe_get e i0)
                            +. (frac *. Array.unsafe_get e (i0 + 1))
                        in
                        Array.unsafe_set sbuf 0
                          (Array.unsafe_get sbuf 0 +. Float.abs u)
                      end
                    done
                | S_square ->
                    for lane = 0 to lanes - 1 do
                      if Array.unsafe_get f.acc_on lane then begin
                        let v = Array.unsafe_get wbuf lane in
                        let v =
                          if v < -1.0 then -1.0
                          else if v > 1.0 then 1.0
                          else v
                        in
                        let pos = (v +. 1.0) /. 2.0 *. fen1 in
                        let i0 = int_of_float (Float.floor pos) in
                        let u =
                          if i0 >= en1 then Array.unsafe_get e en1
                          else
                            let frac = pos -. float_of_int i0 in
                            ((1.0 -. frac) *. Array.unsafe_get e i0)
                            +. (frac *. Array.unsafe_get e (i0 + 1))
                        in
                        Array.unsafe_set sbuf 0
                          (Array.unsafe_get sbuf 0 +. (u *. u))
                      end
                    done
                | S_sign_mult ->
                    for lane = 0 to lanes - 1 do
                      if Array.unsafe_get f.acc_on lane then begin
                        let v =
                          Array.unsafe_get wbuf lane
                          *. Array.unsafe_get xt (tb + lane)
                        in
                        let v =
                          if v < -1.0 then -1.0
                          else if v > 1.0 then 1.0
                          else v
                        in
                        let pos = (v +. 1.0) /. 2.0 *. fen1 in
                        let i0 = int_of_float (Float.floor pos) in
                        let u =
                          if i0 >= en1 then Array.unsafe_get e en1
                          else
                            let frac = pos -. float_of_int i0 in
                            ((1.0 -. frac) *. Array.unsafe_get e i0)
                            +. (frac *. Array.unsafe_get e (i0 + 1))
                        in
                        Array.unsafe_set sbuf 0 (Array.unsafe_get sbuf 0 +. u)
                      end
                    done
                | S_unsign_mult ->
                    for lane = 0 to lanes - 1 do
                      if Array.unsafe_get f.acc_on lane then begin
                        let v =
                          Float.abs (Array.unsafe_get wbuf lane)
                          *. Float.abs (Array.unsafe_get xt (tb + lane))
                        in
                        let v =
                          if v < -1.0 then -1.0
                          else if v > 1.0 then 1.0
                          else v
                        in
                        let pos = (v +. 1.0) /. 2.0 *. fen1 in
                        let i0 = int_of_float (Float.floor pos) in
                        let u =
                          if i0 >= en1 then Array.unsafe_get e en1
                          else
                            let frac = pos -. float_of_int i0 in
                            ((1.0 -. frac) *. Array.unsafe_get e i0)
                            +. (frac *. Array.unsafe_get e (i0 + 1))
                        in
                        Array.unsafe_set sbuf 0 (Array.unsafe_get sbuf 0 +. u)
                      end
                    done);
                let cs =
                  if f.acc_empty then 0.0
                  else Array.unsafe_get sbuf 0 /. f.divisor
                in
                let analog = (f.adc_gain *. cs) +. f.adc_offset in
                let lsb = A.Adc.lsb in
                let half = A.Adc.levels / 2 in
                let code = int_of_float (Float.round (analog /. lsb)) + half in
                let code =
                  if code < 0 then 0
                  else if code > A.Adc.levels - 1 then A.Adc.levels - 1
                  else code
                in
                dst.{off + (dec * iters) + i} <-
                  float_of_int (code - half) *. lsb /. f.adc_gain
              done
            done;
            d := !d + td
          done)
