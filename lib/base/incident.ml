type kind =
  | Timeout
  | Retry
  | Quarantine
  | Degradation
  | Checkpoint_write
  | Checkpoint_resume
  | Checkpoint_stale
  | Signal
  | Run_start
  | Run_end

let kind_name = function
  | Timeout -> "timeout"
  | Retry -> "retry"
  | Quarantine -> "quarantine"
  | Degradation -> "degradation"
  | Checkpoint_write -> "checkpoint-write"
  | Checkpoint_resume -> "checkpoint-resume"
  | Checkpoint_stale -> "checkpoint-stale"
  | Signal -> "signal"
  | Run_start -> "run-start"
  | Run_end -> "run-end"

type sink = Null | Channel of out_channel | Buf of Buffer.t

type t = {
  mutex : Mutex.t;
  mutable sink : sink;
  mutable seq : int;
  opened_ns : int64;
}

let make sink =
  { mutex = Mutex.create (); sink; seq = 0; opened_ns = Clock.monotonic_ns () }

let null = make Null
let is_null t = t.sink = Null

let to_file path =
  match open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path with
  | oc -> Ok (make (Channel oc))
  | exception Sys_error msg ->
      Error.fail ~layer:"incident" ~code:Error.Invalid_operand
        ~context:[ ("path", path) ]
        ("cannot open incident log: " ^ msg)

let to_buffer buf = make (Buf buf)

(* Minimal JSON string escaping: the fields are short ASCII-ish
   diagnostics, but junk must still not break the line format. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let record t kind fields =
  if t.sink <> Null then
    Mutex.protect t.mutex (fun () ->
        match t.sink with
        | Null -> ()
        | sink ->
            t.seq <- t.seq + 1;
            let b = Buffer.create 128 in
            Printf.bprintf b "{\"seq\":%d,\"t_ms\":%.1f,\"wall\":\"%s\",\"kind\":\"%s\""
              t.seq
              (Clock.elapsed_ms ~since:t.opened_ns)
              (iso8601_utc ()) (kind_name kind);
            List.iter
              (fun (k, v) ->
                Printf.bprintf b ",\"%s\":\"%s\"" (escape k) (escape v))
              fields;
            Buffer.add_string b "}\n";
            let line = Buffer.contents b in
            (match sink with
            | Null -> ()
            | Buf buf -> Buffer.add_string buf line
            | Channel oc -> (
                try
                  output_string oc line;
                  flush oc
                with Sys_error _ -> ())))

let count t = Mutex.protect t.mutex (fun () -> t.seq)

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.sink with
      | Channel oc ->
          t.sink <- Null;
          (try close_out oc with Sys_error _ -> ())
      | Buf _ | Null -> ())
