type kind =
  | Timeout
  | Retry
  | Quarantine
  | Degradation
  | Checkpoint_write
  | Checkpoint_resume
  | Checkpoint_stale
  | Signal
  | Run_start
  | Run_end
  | Worker_spawn
  | Worker_death
  | Shard_done
  | Chaos
  | Admission_reject
  | Breaker
  | Bist
  | Sink_degraded

let kind_name = function
  | Timeout -> "timeout"
  | Retry -> "retry"
  | Quarantine -> "quarantine"
  | Degradation -> "degradation"
  | Checkpoint_write -> "checkpoint-write"
  | Checkpoint_resume -> "checkpoint-resume"
  | Checkpoint_stale -> "checkpoint-stale"
  | Signal -> "signal"
  | Run_start -> "run-start"
  | Run_end -> "run-end"
  | Worker_spawn -> "worker-spawn"
  | Worker_death -> "worker-death"
  | Shard_done -> "shard-done"
  | Chaos -> "chaos"
  | Admission_reject -> "admission-reject"
  | Breaker -> "breaker"
  | Bist -> "bist"
  | Sink_degraded -> "sink-degraded"

type file_sink = {
  path : string;
  max_bytes : int;
  mutable oc : out_channel;
  mutable size : int;  (** bytes in the live file *)
  mutable degraded : bool;
      (** the sink errored (e.g. ENOSPC); acting as a counting null
          sink until a write succeeds again *)
  mutable dropped : int;  (** lines lost while degraded *)
}

type sink = Null | File of file_sink | Buf of Buffer.t

type t = {
  mutex : Mutex.t;
  mutable sink : sink;
  mutable seq : int;
  opened_ns : int64;
}

let make sink =
  { mutex = Mutex.create (); sink; seq = 0; opened_ns = Clock.monotonic_ns () }

let null = make Null
let is_null t = t.sink = Null

(* A retry storm in a week-long fleet run must not fill the disk: the
   file sink rotates once it crosses the cap, keeping one [.1] backup
   (so at most ~2 x max_bytes on disk). 64 MiB of JSONL is far beyond
   any legitimate supervision trail. *)
let default_max_bytes = 64 * 1024 * 1024

let open_sink path =
  open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path

let to_file ?(max_bytes = default_max_bytes) path =
  match open_sink path with
  | oc ->
      Ok
        (make
           (File
              {
                path;
                max_bytes = max max_bytes 1;
                oc;
                size = out_channel_length oc;
                degraded = false;
                dropped = 0;
              }))
  | exception Sys_error msg ->
      Error.fail ~layer:"incident" ~code:Error.Invalid_operand
        ~context:[ ("path", path) ]
        ("cannot open incident log: " ^ msg)

let to_buffer buf = make (Buf buf)

(* Minimal JSON string escaping: the fields are short ASCII-ish
   diagnostics, but junk must still not break the line format. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Render one line, consuming a sequence number. Must run under the
   sink mutex. *)
let render t kind fields =
  t.seq <- t.seq + 1;
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"seq\":%d,\"t_ms\":%.1f,\"wall\":\"%s\",\"kind\":\"%s\""
    t.seq
    (Clock.elapsed_ms ~since:t.opened_ns)
    (iso8601_utc ()) (kind_name kind);
  List.iter
    (fun (k, v) -> Printf.bprintf b ",\"%s\":\"%s\"" (escape k) (escape v))
    fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* One attempt to land [line] in the file, rotating first if needed.
   [false] = the sink is sick (ENOSPC and friends) — the caller decides
   what the outage means; this never raises. *)
let file_write f line =
  try
    (match Failpoint.check "incident.write" with
    | Some Failpoint.Fail -> raise (Sys_error "injected ENOSPC")
    | Some (Failpoint.Delay ns) -> Unix.sleepf (Int64.to_float ns /. 1e9)
    | Some Failpoint.Interrupt | None -> ());
    if f.size > 0 && f.size + String.length line > f.max_bytes then begin
      (match Failpoint.check "incident.rotate" with
      | Some Failpoint.Fail -> raise (Sys_error "injected rotate failure")
      | Some (Failpoint.Delay ns) -> Unix.sleepf (Int64.to_float ns /. 1e9)
      | Some Failpoint.Interrupt | None -> ());
      (* rotate: the live file becomes the single backup *)
      close_out_noerr f.oc;
      (try Sys.rename f.path (f.path ^ ".1") with Sys_error _ -> ());
      f.oc <- open_sink f.path;
      f.size <- out_channel_length f.oc
    end;
    output_string f.oc line;
    f.size <- f.size + String.length line;
    flush f.oc;
    true
  with Sys_error _ -> false

let record t kind fields =
  if t.sink <> Null then
    Mutex.protect t.mutex (fun () ->
        match t.sink with
        | Null -> ()
        | Buf buf -> Buffer.add_string buf (render t kind fields)
        | File f ->
            (* Losing an incident must not kill the campaign it
               describes: a sick sink degrades to counting drops, and
               the first write that lands again is preceded by one
               [sink-degraded] marker carrying the loss count — the log
               reader sees the gap instead of inferring it. *)
            if f.degraded then begin
              let marker =
                render t Sink_degraded
                  [
                    ("dropped", string_of_int f.dropped);
                    ("state", "recovered");
                  ]
              in
              if file_write f marker then begin
                f.degraded <- false;
                f.dropped <- 0;
                if not (file_write f (render t kind fields)) then begin
                  f.degraded <- true;
                  f.dropped <- 1
                end
              end
              else f.dropped <- f.dropped + 1
            end
            else if not (file_write f (render t kind fields)) then begin
              f.degraded <- true;
              f.dropped <- 1
            end)

let count t = Mutex.protect t.mutex (fun () -> t.seq)

let degraded t =
  Mutex.protect t.mutex (fun () ->
      match t.sink with File f -> f.degraded | Null | Buf _ -> false)

let dropped t =
  Mutex.protect t.mutex (fun () ->
      match t.sink with File f -> f.dropped | Null | Buf _ -> 0)

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.sink with
      | File f ->
          t.sink <- Null;
          (try close_out f.oc with Sys_error _ -> ())
      | Buf _ | Null -> ())
