(** Deterministic fault injection at named sites.

    A failpoint is a named hook compiled into an IO or dispatch
    boundary — [Ipc] reads and writes, [Checkpoint.save], the
    [Incident] file sink, [Queue_bounded] admission, the serve engine's
    flush/dispatch path, [Machine]/[Runtime] execution. In production
    every site is off and a check is one branch-predictable atomic load
    ({!check} returns [None] without taking a lock). Under test or
    chaos, {!configure} arms sites with per-site policies; every
    probabilistic decision is drawn from a splitmix64 stream seeded per
    (seed, site name), so a run with the same seed and the same call
    sequence replays its fault schedule bit-identically — fault
    injection is a first-class deterministic layer, not ad-hoc test
    scaffolding.

    Site names are a {e stable interface}, like the [P-*] diagnostic
    codes: tests, chaos schedules and CI greps depend on them. The
    catalog lives in {!sites}; configuring an unknown site is a typed
    error (a typo must not silently arm nothing).

    Configuration comes from three equivalent places: direct
    {!configure} calls (tests), the [PROMISE_FAILPOINTS] environment
    variable ({!from_env}), and the [--failpoints] CLI flag — both of
    the latter use the {!parse_spec} grammar

    {v site:policy[,site:policy...]
       policy := off | fail_once | eintr | fail_prob=P | delay_ns=N v}

    e.g. [PROMISE_FAILPOINTS=ipc.read:eintr,serve.dispatch:fail_prob=0.05]. *)

(** What an armed site does when its check fires. *)
type policy =
  | Off  (** never fires (the parked state; keeps the site's stats) *)
  | Fail_once  (** fire on the first check, then behave as [Off] *)
  | Fail_prob of float  (** fire with probability [p] per check, seeded *)
  | Delay_ns of int64  (** never fail; delay the caller that long *)
  | Eintr
      (** interrupt the syscall-shaped operation: the site simulates
          EINTR / a short transfer and the caller must retry — fires
          with probability 1/2 per check (seeded) so retry loops make
          progress *)

(** What a fired check tells the site to do. *)
type fire =
  | Fail  (** inject the site's failure (typed error / EOF / ENOSPC) *)
  | Delay of int64  (** sleep that many ns, then proceed *)
  | Interrupt  (** simulate EINTR or a 1-byte short transfer, retry *)

val sites : string list
(** The stable site catalog. Current sites:
    [ipc.read], [ipc.write], [checkpoint.save], [incident.write],
    [incident.rotate], [queue.admit], [serve.flush], [serve.dispatch],
    [machine.execute], [runtime.run]. *)

val configure :
  ?seed:int -> (string * policy) list -> (unit, Error.t) result
(** [configure ~seed assignments] — arm the listed sites (replacing the
    whole previous configuration) and enable checking. Unknown site
    names and out-of-range probabilities are typed [Invalid_operand]
    errors, and leave the previous configuration untouched. [seed]
    (default 0) roots every site's decision stream. *)

val parse_spec : string -> ((string * policy) list, Error.t) result
(** Parse the [site:policy,...] grammar above. Typed errors name the
    offending clause; an empty spec is [Ok []]. *)

val configure_spec : ?seed:int -> string -> (unit, Error.t) result
(** [parse_spec] then [configure]. *)

val from_env : ?seed:int -> unit -> (unit, Error.t) result
(** Arm from [PROMISE_FAILPOINTS] (a no-op [Ok ()] when unset or
    blank). CLIs call this once at startup, after [check_env]. *)

val check : string -> fire option
(** [check site] — consult the site. [None] (proceed normally) unless
    failpoints are enabled {e and} [site] is armed {e and} its policy
    fires. The disabled fast path is one atomic load, no lock, no
    allocation. Checking a site that is not in {!sites} is allowed and
    always [None] — callers never validate, only {!configure} does. *)

val enabled : unit -> bool
(** Whether any site is armed ({!check}'s fast-path gate). *)

val reset : unit -> unit
(** Disarm everything and drop all stats; {!enabled} becomes false. *)

type stat = { site : string; hits : int; fires : int }
(** Per-site accounting: [hits] checks consulted, [fires] triggered. *)

val stats : unit -> stat list
(** Stats of every armed site, in configuration order. *)
