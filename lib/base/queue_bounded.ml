type 'a t = {
  lock : Mutex.t;
  q : 'a Queue.t;
  capacity : int;
  mutable pushed : int;
  mutable rejected : int;
  mutable popped : int;
  mutable max_depth : int;
}

type stats = { pushed : int; rejected : int; popped : int; max_depth : int }

let max_capacity = 1_048_576

let create ~capacity =
  if capacity < 1 || capacity > max_capacity then
    Error.fail ~layer:"queue" ~code:Error.Invalid_operand
      ~context:
        [
          ("capacity", string_of_int capacity);
          ("max", string_of_int max_capacity);
        ]
      "queue capacity out of range"
  else
    Ok
      {
        lock = Mutex.create ();
        q = Queue.create ();
        capacity;
        pushed = 0;
        rejected = 0;
        popped = 0;
        max_depth = 0;
      }

let create_exn ~capacity =
  match create ~capacity with
  | Ok t -> t
  | Error e -> invalid_arg (Error.to_string e)

let capacity t = t.capacity
let length t = Mutex.protect t.lock (fun () -> Queue.length t.q)

let try_push t v =
  Mutex.protect t.lock (fun () ->
      let depth = Queue.length t.q in
      let injected =
        match Failpoint.check "queue.admit" with
        | Some Failpoint.Fail -> true
        | Some (Failpoint.Delay _) | Some Failpoint.Interrupt | None -> false
      in
      if injected then begin
        t.rejected <- t.rejected + 1;
        Error.fail ~layer:"queue" ~code:Error.Capacity
          ~context:
            [
              ("depth", string_of_int depth);
              ("capacity", string_of_int t.capacity);
              ("injected", "true");
            ]
          "queue full; request rejected"
      end
      else if depth >= t.capacity then begin
        t.rejected <- t.rejected + 1;
        Error.fail ~layer:"queue" ~code:Error.Capacity
          ~context:
            [
              ("depth", string_of_int depth);
              ("capacity", string_of_int t.capacity);
            ]
          "queue full; request rejected"
      end
      else begin
        Queue.push v t.q;
        t.pushed <- t.pushed + 1;
        if depth + 1 > t.max_depth then t.max_depth <- depth + 1;
        Ok ()
      end)

let peek_opt t = Mutex.protect t.lock (fun () -> Queue.peek_opt t.q)

let pop_opt t =
  Mutex.protect t.lock (fun () ->
      match Queue.take_opt t.q with
      | Some v ->
          t.popped <- t.popped + 1;
          Some v
      | None -> None)

let drain ?max t =
  Mutex.protect t.lock (fun () ->
      let limit = match max with Some m -> m | None -> Queue.length t.q in
      let rec go acc n =
        if n = 0 then List.rev acc
        else
          match Queue.take_opt t.q with
          | None -> List.rev acc
          | Some v ->
              t.popped <- t.popped + 1;
              go (v :: acc) (n - 1)
      in
      go [] (Stdlib.max 0 limit))

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        pushed = t.pushed;
        rejected = t.rejected;
        popped = t.popped;
        max_depth = t.max_depth;
      })
