let fail ~what ?(ctx = []) msg =
  Error.fail ~layer:"cli" ~code:Error.Invalid_operand
    ~context:(("flag", what) :: ctx)
    msg

let int_in_range ~what ~min ~max s =
  let s = String.trim s in
  match int_of_string_opt s with
  | None -> fail ~what ~ctx:[ ("value", s) ] "expected an integer"
  | Some v when v < min || v > max ->
      fail ~what
        ~ctx:[ ("value", s) ]
        (Printf.sprintf "must be in %d..%d" min max)
  | Some v -> Ok v

let positive_int ~what s = int_in_range ~what ~min:1 ~max:max_int s

let non_negative_float ~what s =
  let s = String.trim s in
  match float_of_string_opt s with
  | None -> fail ~what ~ctx:[ ("value", s) ] "expected a number"
  | Some v when Float.is_nan v || v = infinity || v < 0.0 ->
      fail ~what ~ctx:[ ("value", s) ] "must be a finite number >= 0"
  | Some v -> Ok v

let enum ~what ~values s =
  let v = String.lowercase_ascii (String.trim s) in
  if List.mem v values then Ok v
  else
    fail ~what
      ~ctx:[ ("value", s) ]
      ("expected one of: " ^ String.concat ", " values)

let env_value name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> if String.trim s = "" then None else Some (String.trim s)

let env_int ~name ~min ~max =
  match env_value name with
  | None -> Ok None
  | Some s -> Result.map Option.some (int_in_range ~what:name ~min ~max s)

let env_enum ~name ~values =
  match env_value name with
  | None -> Ok None
  | Some s ->
      let v = String.lowercase_ascii s in
      if List.mem v values then Ok (Some v)
      else
        fail ~what:name
          ~ctx:[ ("value", s) ]
          ("expected one of: " ^ String.concat ", " values)

let all checks =
  List.fold_left
    (fun acc c -> match acc with Error _ -> acc | Ok () -> c)
    (Ok ()) checks
