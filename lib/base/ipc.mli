(** Length-prefixed marshalled message frames over file descriptors.

    The wire protocol between a fleet parent and its forked workers:
    every message is one frame — a 4-byte magic, a 4-byte big-endian
    payload length, then the [Marshal]-encoded payload. Framing makes
    worker death detectable and safe: a clean EOF (the peer exited
    between frames) is distinguished from a truncated frame (the peer
    was killed mid-write), and a corrupt length field is rejected
    before any allocation.

    Like {!Checkpoint}, the payload goes through [Marshal], so {!read}
    is only type-safe when both ends agree on the message type — keep
    one message type per channel direction.

    Reads and writes retry on [EINTR] and loop over short transfers;
    {!write} reports a broken pipe ([EPIPE]) as a typed error rather
    than a signal, so callers must have [SIGPIPE] ignored (fleet
    parents do this around the run). *)

val max_frame_bytes : int
(** Upper bound on one payload (256 MiB): a length field beyond it is
    treated as corruption, not an allocation request. *)

val write : Unix.file_descr -> 'a -> (unit, Error.t) result
(** [write fd v] — marshal [v] and send one frame. Errors: the peer
    closed its end ([EPIPE]), the descriptor is invalid, or the
    payload exceeds {!max_frame_bytes}. *)

val read : Unix.file_descr -> ('a option, Error.t) result
(** [read fd] — block until one full frame arrives and unmarshal it.
    [Ok None] is a clean EOF at a frame boundary (the peer exited
    idle); a truncated frame, bad magic or corrupt length is an
    [Error] (the peer died mid-message). *)
