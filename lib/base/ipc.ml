let magic = "PIP1"
let header_len = 8 (* 4 magic + 4 length, big-endian *)
let max_frame_bytes = 256 * 1024 * 1024

let fail ~code msg ctx = Error.fail ~layer:"ipc" ~code ~context:ctx msg

let unix_ctx fn msg = [ ("syscall", fn); ("unix", msg) ]

(* ------------------------------------------------------------------ *)
(* Blocking full transfers with EINTR retry                            *)
(* ------------------------------------------------------------------ *)

(* Failpoint semantics at the transfer loops: [Fail] on write is a
   typed write error, [Fail] on read simulates the peer dying at the
   current offset (clean EOF between frames, truncation mid-frame);
   [Interrupt] clamps the transfer to one byte — a short read/write the
   loop must absorb, exactly the shape a signal-interrupted syscall
   produces. *)
let fp_sleep ns = Unix.sleepf (Int64.to_float ns /. 1e9)

let rec write_all fd buf ofs len =
  if len = 0 then Ok ()
  else
    let req =
      match Failpoint.check "ipc.write" with
      | None -> len
      | Some Failpoint.Fail -> -1
      | Some (Failpoint.Delay ns) ->
          fp_sleep ns;
          len
      | Some Failpoint.Interrupt -> 1
    in
    if req < 0 then
      fail ~code:Error.Invalid_operand "frame write failed"
        (unix_ctx "write" "injected write failure")
    else
      match Unix.write fd buf ofs req with
      | n -> write_all fd buf (ofs + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          write_all fd buf ofs len
      | exception Unix.Unix_error (err, fn, _) ->
          fail ~code:Error.Invalid_operand "frame write failed"
            (unix_ctx fn (Unix.error_message err))

(* [`Eof n] = the peer closed after [n] of [len] bytes. *)
let rec read_all fd buf ofs len =
  if len = 0 then Ok `Done
  else
    let req =
      match Failpoint.check "ipc.read" with
      | None -> len
      | Some Failpoint.Fail -> -1
      | Some (Failpoint.Delay ns) ->
          fp_sleep ns;
          len
      | Some Failpoint.Interrupt -> 1
    in
    if req < 0 then Ok (`Eof ofs)
    else
      match Unix.read fd buf ofs req with
      | 0 -> Ok (`Eof ofs)
      | n -> read_all fd buf (ofs + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all fd buf ofs len
      | exception Unix.Unix_error (err, fn, _) ->
          fail ~code:Error.Invalid_operand "frame read failed"
            (unix_ctx fn (Unix.error_message err))

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let write fd v =
  let payload = Marshal.to_bytes v [] in
  let n = Bytes.length payload in
  if n > max_frame_bytes then
    fail ~code:Error.Capacity "message exceeds the frame limit"
      [
        ("bytes", string_of_int n);
        ("max", string_of_int max_frame_bytes);
      ]
  else begin
    let frame = Bytes.create (header_len + n) in
    Bytes.blit_string magic 0 frame 0 4;
    Bytes.set_int32_be frame 4 (Int32.of_int n);
    Bytes.blit payload 0 frame header_len n;
    write_all fd frame 0 (Bytes.length frame)
  end

let read fd =
  let header = Bytes.create header_len in
  match read_all fd header 0 header_len with
  | Error e -> Error e
  | Ok (`Eof 0) -> Ok None (* clean EOF between frames *)
  | Ok (`Eof n) ->
      fail ~code:Error.Invalid_operand "peer died mid-header"
        [ ("got-bytes", string_of_int n) ]
  | Ok `Done ->
      if Bytes.sub_string header 0 4 <> magic then
        fail ~code:Error.Invalid_operand "bad frame magic"
          [ ("magic", String.escaped (Bytes.sub_string header 0 4)) ]
      else
        let len = Int32.to_int (Bytes.get_int32_be header 4) in
        if len < 0 || len > max_frame_bytes then
          fail ~code:Error.Invalid_operand "corrupt frame length"
            [ ("length", string_of_int len) ]
        else
          let payload = Bytes.create len in
          match read_all fd payload 0 len with
          | Error e -> Error e
          | Ok (`Eof n) ->
              fail ~code:Error.Invalid_operand "peer died mid-frame"
                [
                  ("got-bytes", string_of_int n);
                  ("frame-bytes", string_of_int len);
                ]
          | Ok `Done -> (
              match Marshal.from_bytes payload 0 with
              | v -> Ok (Some v)
              | exception Failure msg ->
                  fail ~code:Error.Invalid_operand "unmarshal failed"
                    [ ("error", msg) ])
