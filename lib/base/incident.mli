(** Structured JSONL incident log for supervised runs.

    Every noteworthy supervision event — a watchdog timeout, a retry,
    a quarantined work item, a runtime degradation, a checkpoint write
    or resume, a signal-triggered flush — appends one self-contained
    JSON object to the sink, so a 40-minute campaign leaves an
    audit trail that survives the process and can be shipped as a CI
    artifact. Writes are mutex-serialized (pool workers log
    concurrently) and flushed per line: the tail of the log is valid
    JSONL even after a SIGKILL.

    Lines look like
    {v {"seq":3,"t_ms":152.7,"wall":"2026-08-06T12:00:01Z","kind":"retry","item":"cell-7","attempt":"1","delay_ms":"48.1"} v}
    ([seq] is a per-sink counter, [t_ms] monotonic milliseconds since
    the sink opened, [wall] UTC wall-clock). *)

type kind =
  | Timeout  (** a work item exceeded its deadline *)
  | Retry  (** an attempt failed; backing off before the next *)
  | Quarantine  (** retries exhausted; the item is isolated *)
  | Degradation  (** the system continued in a degraded mode *)
  | Checkpoint_write  (** progress persisted *)
  | Checkpoint_resume  (** a run resumed from persisted progress *)
  | Checkpoint_stale  (** a checkpoint was rejected (config mismatch) *)
  | Signal  (** SIGINT/SIGTERM observed; final flush initiated *)
  | Run_start
  | Run_end
  | Worker_spawn  (** a fleet forked (or replaced) a worker process *)
  | Worker_death  (** a worker exited, was signaled, or was killed *)
  | Shard_done  (** a fleet shard completed (with timing) *)
  | Chaos  (** the chaos self-test deliberately killed a worker *)
  | Admission_reject
      (** the serving layer's bounded queue refused a request *)
  | Breaker  (** a serve circuit breaker changed state *)
  | Bist  (** a built-in self-test ran (findings in the fields) *)
  | Sink_degraded
      (** this sink itself failed (e.g. ENOSPC) and later recovered;
          the [dropped] field counts the lines lost in between *)

val kind_name : kind -> string

type t

val null : t
(** Discards everything; the default when no [--incidents] path is
    given. *)

val is_null : t -> bool

val default_max_bytes : int
(** The rotation cap of a file sink: 64 MiB. *)

val to_file : ?max_bytes:int -> string -> (t, Error.t) result
(** Append-mode sink on [path] (created if missing). Once the live
    file would cross [max_bytes] (default {!default_max_bytes}) it is
    rotated to [path ^ ".1"] — overwriting the previous backup — and a
    fresh file is started, so a retry storm in a long fleet run keeps
    at most ~2 x [max_bytes] of log on disk. *)

val to_buffer : Buffer.t -> t
(** In-memory sink, for tests. *)

val record : t -> kind -> (string * string) list -> unit
(** [record t kind fields] — append one JSONL line. Keys [seq],
    [t_ms], [wall] and [kind] are reserved; [fields] is free-form
    string key/value context. Never raises: when a file sink errors
    (ENOSPC, injected [incident.write]/[incident.rotate] failpoints) it
    degrades to a counting null sink, and the first write that lands
    again is preceded by one [Sink_degraded] marker carrying the count
    of lines lost — losing incidents must not kill the campaign they
    describe, but the loss itself is an incident. *)

val count : t -> int
(** Lines recorded through this sink so far (0 for {!null}). *)

val degraded : t -> bool
(** Whether a file sink is currently in the counting-drop state. *)

val dropped : t -> int
(** Lines lost in the {e current} outage (0 once recovered — the total
    was written into the [Sink_degraded] marker). *)

val close : t -> unit
(** Flush and close a file sink — subsequent {!record}s through it are
    dropped. Idempotent; a no-op for null and buffer sinks. *)
