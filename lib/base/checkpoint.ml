let magic = "PROMISE-CKPT"
let format_version = 1

(* Bumped together with the library; folded into every digest so a
   checkpoint never survives a version boundary. *)
let library_tag = "promise-checkpoint-v1"

let digest_of_config ~kind parts =
  Digest.to_hex
    (Digest.string (String.concat "\x00" (library_tag :: kind :: parts)))

let fail ~code ~path msg =
  Error.fail ~layer:"checkpoint" ~code ~context:[ ("path", path) ] msg

let tmp_path path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

module For_tests = struct
  let dir_fsyncs = ref 0
end

(* The rename makes the checkpoint visible, but only an fsync of the
   containing directory makes the rename itself durable: a power cut
   after rename but before the directory entry hits disk can leave the
   old name (or nothing). Best-effort — some filesystems refuse
   O_RDONLY fsync on directories, and that must not fail the save. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try
         Unix.fsync fd;
         incr For_tests.dir_fsyncs
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let save ~path ~config_digest payload =
  let tmp = tmp_path path in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_binary_int oc format_version;
       output_binary_int oc (String.length config_digest);
       output_string oc config_digest;
       Marshal.to_channel oc payload [];
       flush oc;
       (* The failpoint models the disk dying at the worst moment: data
          staged in the temp file but never durable. Raising here drops
          into the handler below, which removes the torn temp file —
          exactly the cleanup a real fsync failure needs. *)
       (match Failpoint.check "checkpoint.save" with
       | Some Failpoint.Fail -> raise (Sys_error "injected fsync failure")
       | Some (Failpoint.Delay ns) ->
           Unix.sleepf (Int64.to_float ns /. 1e9)
       | Some Failpoint.Interrupt | None -> ());
       (* fsync before rename: the rename must not beat the data to disk *)
       Unix.fsync (Unix.descr_of_out_channel oc);
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path;
    fsync_dir path;
    Ok ()
  with
  | Sys_error msg | Unix.Unix_error (_, _, msg) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      fail ~code:Error.Invalid_operand ~path ("checkpoint write failed: " ^ msg)

let load ~path ~config_digest =
  if not (Sys.file_exists path) then
    fail ~code:Error.Invalid_operand ~path "no checkpoint at this path"
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let m = really_input_string ic (String.length magic) in
          if m <> magic then
            fail ~code:Error.Invalid_operand ~path "not a checkpoint file"
          else
            let v = input_binary_int ic in
            if v <> format_version then
              fail ~code:Error.Stale_checkpoint ~path
                (Printf.sprintf "checkpoint format v%d, expected v%d" v
                   format_version)
            else
              let dlen = input_binary_int ic in
              if dlen < 0 || dlen > 4096 then
                fail ~code:Error.Invalid_operand ~path "corrupt checkpoint header"
              else
                let stored = really_input_string ic dlen in
                if stored <> config_digest then
                  Error
                    (Error.make ~layer:"checkpoint"
                       ~code:Error.Stale_checkpoint
                       ~context:
                         [
                           ("path", path);
                           ("stored-digest", stored);
                           ("run-digest", config_digest);
                         ]
                       "checkpoint was written by a different run \
                        configuration; refusing to resume")
                else Ok (Marshal.from_channel ic))
    with
    | Sys_error msg ->
        fail ~code:Error.Invalid_operand ~path ("cannot read checkpoint: " ^ msg)
    | End_of_file | Failure _ ->
        fail ~code:Error.Invalid_operand ~path "truncated or corrupt checkpoint"

let exists = Sys.file_exists

let remove path =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; tmp_path path ]
