(* A fixed-size Domain work pool with deterministic result ordering.

   Shape: one shared batch slot guarded by a mutex/condition pair.
   [map_*] publishes a batch (a [run : int -> unit] closure over an
   index space), the caller and the worker domains pull indices from
   an atomic counter, and the caller blocks until the completion
   counter reaches the batch size.  Each batch carries a generation
   number so a worker that drained a batch parks again instead of
   spinning on the still-published (but exhausted) slot.

   Results land at their input index, so ordering is positional no
   matter which domain computed what.  The first exception raised by
   any item is captured (with backtrace) via compare-and-set and
   re-raised in the caller once the batch has fully drained — a
   failing item never leaves another domain mid-flight.

   A map issued from *inside* a pool item (the nested case) runs
   inline in that item's domain: the shared workers are busy with the
   outer batch, so queueing would deadlock.  A domain-local flag marks
   "currently running a pool item" to detect this. *)

exception
  Item_failure of { index : int; exn : exn; backtrace : string }

let () =
  Printexc.register_printer (function
    | Item_failure { index; exn; backtrace } ->
        Some
          (Printf.sprintf
             "Pool.Item_failure(item %d: %s)%s" index
             (Printexc.to_string exn)
             (if backtrace = "" then ""
              else "\nitem backtrace:\n" ^ backtrace))
    | _ -> None)

type batch = {
  gen : int;
  n : int;
  run : int -> unit;
  next : int Atomic.t;
  completed : int Atomic.t;
  failure : (int * exn * Printexc.raw_backtrace) option Atomic.t;
}

type shared = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  map_lock : Mutex.t; (* serializes concurrent top-level maps *)
  mutable current : batch option;
  mutable generation : int;
  mutable stop : bool;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

type t = Sequential | Parallel of shared

let max_jobs = 64
let sequential = Sequential
let jobs = function Sequential -> 1 | Parallel sh -> sh.jobs
let is_parallel t = jobs t > 1

let default_jobs () =
  let requested =
    match Sys.getenv_opt "PROMISE_JOBS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
                  | Some n when n >= 1 -> n
                  | _ -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min max_jobs requested)

(* True while the current domain is executing an item of some batch;
   used to run nested maps inline instead of deadlocking. *)
let in_item : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let record_failure b index exn =
  let bt = Printexc.get_raw_backtrace () in
  ignore (Atomic.compare_and_set b.failure None (Some (index, exn, bt)))

(* Pull indices until the batch is exhausted.  Runs in workers and in
   the publishing caller alike. *)
let drain sh b =
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      Domain.DLS.set in_item true;
      (try b.run i with exn -> record_failure b i exn);
      Domain.DLS.set in_item false;
      let finished = 1 + Atomic.fetch_and_add b.completed 1 in
      if finished = b.n then begin
        Mutex.lock sh.mutex;
        Condition.broadcast sh.batch_done;
        Mutex.unlock sh.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker sh =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock sh.mutex;
    while
      (not sh.stop)
      && (match sh.current with None -> true | Some b -> b.gen = !last_gen)
    do
      Condition.wait sh.work_available sh.mutex
    done;
    match sh.current with
    | Some b when not sh.stop ->
        last_gen := b.gen;
        Mutex.unlock sh.mutex;
        drain sh b
    | _ ->
        Mutex.unlock sh.mutex;
        running := false
  done

let create ~jobs =
  if jobs < 1 || jobs > max_jobs then
    invalid_arg
      (Printf.sprintf "Pool.create: jobs must be in 1..%d (got %d)" max_jobs
         jobs);
  if jobs = 1 then Sequential
  else begin
    let sh =
      {
        jobs;
        mutex = Mutex.create ();
        work_available = Condition.create ();
        batch_done = Condition.create ();
        map_lock = Mutex.create ();
        current = None;
        generation = 0;
        stop = false;
        closed = false;
        domains = [];
      }
    in
    sh.domains <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker sh));
    Parallel sh
  end

let shutdown = function
  | Sequential -> ()
  | Parallel sh ->
      let already =
        Mutex.lock sh.mutex;
        let c = sh.closed in
        if not c then begin
          sh.stop <- true;
          sh.closed <- true;
          Condition.broadcast sh.work_available
        end;
        Mutex.unlock sh.mutex;
        c
      in
      if not already then List.iter Domain.join sh.domains

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run one item, wrapping any escape with its index and backtrace so
   sequential and parallel maps fail identically. *)
let run_item f arr i =
  try f arr.(i)
  with exn ->
    let bt = Printexc.get_raw_backtrace () in
    Printexc.raise_with_backtrace
      (Item_failure
         {
           index = i;
           exn;
           backtrace = String.trim (Printexc.raw_backtrace_to_string bt);
         })
      bt

let sequential_map_array f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* explicit ascending loop: Array.init order is unspecified and f
       may draw from an RNG stream *)
    let out = Array.make n (run_item f arr 0) in
    for i = 1 to n - 1 do
      out.(i) <- run_item f arr i
    done;
    out
  end

let parallel_map_array sh f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    Mutex.lock sh.map_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sh.map_lock)
      (fun () ->
        let results = Array.make n None in
        Mutex.lock sh.mutex;
        if sh.closed then begin
          Mutex.unlock sh.mutex;
          invalid_arg "Pool: map on a shut-down pool"
        end;
        sh.generation <- sh.generation + 1;
        let b =
          {
            gen = sh.generation;
            n;
            run = (fun i -> results.(i) <- Some (f arr.(i)));
            next = Atomic.make 0;
            completed = Atomic.make 0;
            failure = Atomic.make None;
          }
        in
        sh.current <- Some b;
        Condition.broadcast sh.work_available;
        Mutex.unlock sh.mutex;
        drain sh b;
        Mutex.lock sh.mutex;
        while Atomic.get b.completed < b.n do
          Condition.wait sh.batch_done sh.mutex
        done;
        sh.current <- None;
        Mutex.unlock sh.mutex;
        (match Atomic.get b.failure with
        | Some (index, exn, bt) ->
            (* wrap instead of re-raising bare: by the time the error
               surfaces in the caller, which grid cell failed and where
               it blew up is exactly the context a campaign needs *)
            Printexc.raise_with_backtrace
              (Item_failure
                 {
                   index;
                   exn;
                   backtrace = String.trim (Printexc.raw_backtrace_to_string bt);
                 })
              bt
        | None -> ());
        Array.map
          (function
            | Some v -> v
            | None -> assert false (* completed = n implies all written *))
          results)
  end

let map_array t f arr =
  match t with
  | Sequential -> sequential_map_array f arr
  | Parallel sh ->
      if Domain.DLS.get in_item then
        (* nested: workers are occupied by the outer batch *)
        sequential_map_array f arr
      else parallel_map_array sh f arr

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))
