(** A bounded FIFO with typed admission rejection.

    The admission-control primitive of the serving layer: producers
    offer work with {!try_push}, and when the queue is at capacity the
    offer fails {e immediately} with a typed [Capacity] error instead
    of blocking — backpressure is a response the caller can forward to
    a client, not a stalled thread. Operations are mutex-serialized so
    a socket loop and a dispatcher domain can share one queue, and the
    counters ({!stats}) survive into the service's metrics: every
    accepted, rejected and drained item is accounted for, along with
    the high-water depth the queue ever reached. *)

type 'a t

val create : capacity:int -> ('a t, Error.t) result
(** [create ~capacity] — an empty queue admitting at most [capacity]
    items at once. [Invalid_operand] unless [1 <= capacity <= 1_048_576]. *)

val create_exn : capacity:int -> 'a t
(** [create] for static configurations; raises [Invalid_argument]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val try_push : 'a t -> 'a -> (unit, Error.t) result
(** Admit one item, or fail with a typed [Capacity] error carrying the
    queue's depth and capacity — never blocks, never drops silently. *)

val peek_opt : 'a t -> 'a option
(** The oldest item without removing it, [None] when empty. The serving
    layer uses this for dwell-based shedding: the head's age bounds the
    head-of-line blocking every later item will suffer. *)

val pop_opt : 'a t -> 'a option
(** Remove and return the oldest item, [None] when empty. *)

val drain : ?max:int -> 'a t -> 'a list
(** [drain ?max t] — pop up to [max] items (default: everything),
    oldest first. *)

type stats = {
  pushed : int;  (** admissions *)
  rejected : int;  (** failed {!try_push} offers *)
  popped : int;
  max_depth : int;  (** high-water mark of {!length} *)
}

val stats : 'a t -> stats
