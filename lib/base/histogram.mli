(** A bounded-memory log-linear histogram for latency and size
    distributions.

    Recording a sample is O(1) into a fixed array of buckets — 64
    linear buckets per power of two — so a long-running service can
    track millions of latencies without retaining them: integer values
    below 64 land in exact buckets, larger values in buckets whose
    relative width is at most 1/32 (~3%). Percentiles use the
    nearest-rank definition over the bucket counts and report the
    bucket's upper bound, so a reported p99 is never below the true
    p99 and overshoots it by at most the bucket width.

    Samples are non-negative (negative values clamp to zero) and are
    truncated to integers on entry — nanoseconds and batch sizes, not
    fractions. *)

type t

val create : unit -> t
val clear : t -> unit

val add : t -> float -> unit
(** Record one sample ([Float.to_int], clamped to [>= 0]). *)

val count : t -> int
val mean : t -> float
(** Exact mean of the recorded samples (0 when empty). *)

val min_value : t -> float
val max_value : t -> float
(** Exact extremes of the recorded samples (0 when empty). *)

val percentile : t -> float -> float
(** [percentile t q] — the nearest-rank [q]-quantile ([q] clamped to
    [0..1]; rank [ceil (q * count)], at least 1): the upper bound of
    the bucket holding that rank. 0 when empty. *)

val buckets : t -> (float * int) list
(** Non-empty buckets, ascending: (upper-bound value, count). *)
