(** Shared diagnostics for the static-analysis passes.

    Every check in the lint stack — per-task OP_PARAM validation, the
    whole-program Task-ISA verifier, the SSA validator and the interval
    overflow analysis — reports through this one vocabulary: a stable
    code (["P-ISA-003"]), a severity, a source span and a message.
    Stable codes are the contract: tests assert them, CI greps them,
    and the docs table in ARCHITECTURE §10 enumerates them.

    Error-severity diagnostics convert into the typed
    {!Promise_core.Error.t} via {!to_error} so compiler entry points
    fail closed through the existing error channel. *)

type severity = Info | Warning | Error

type span =
  | No_span
  | Line of int  (** 1-based source line of a [.pasm] file *)
  | Task of int  (** 0-based index into an ISA program *)
  | Block of string  (** SSA block label *)
  | Instr of { block : string; vreg : int }  (** SSA instruction *)
  | Node of int  (** AbstractTask graph node id *)

type t = { code : string; severity : severity; span : span; message : string }

val make : ?severity:severity -> ?span:span -> code:string -> string -> t
(** [make ~code msg] — an error-severity diagnostic with no span. *)

val errorf :
  ?span:span -> code:string -> ('a, unit, string, t) format4 -> 'a
(** [errorf ~code fmt ...] — printf-style error constructor. *)

val warningf :
  ?span:span -> code:string -> ('a, unit, string, t) format4 -> 'a

val code : t -> string
val severity : t -> severity
val span : t -> span
val message : t -> string

val with_span : t -> span -> t
(** Attach or replace the span (checks often discover the position
    after the fact, e.g. the assembler adding the line number). *)

val severity_name : severity -> string
(** ["info"], ["warning"], ["error"]. *)

val span_to_string : span -> string
(** Human rendering, e.g. ["line 3"], ["task 2"]; [""] for {!No_span}. *)

val render : t -> string
(** Compact ["[CODE] message"] — used when a diagnostic is embedded in
    a legacy string error (assembler line errors, [invalid_arg]). *)

val to_string : t -> string
(** Full one-line rendering: ["error[P-ISA-003] task 2: message"]. *)

val is_error : t -> bool
val count_errors : t list -> int
val count_warnings : t list -> int
val first_error : t list -> t option

val sort : t list -> t list
(** Stable report order: span position, then code, then severity
    (errors before warnings at the same position). *)

val skeleton : string -> string
(** Message skeleton: every run of decimal digits collapses to ['#'],
    so messages differing only in numeric payload (bounds, cycle
    counts) share an identity. *)

val fingerprint : ?salt:string -> t -> string
(** Stable 16-hex-char identity of a diagnostic — MD5 of
    [salt × code × span × message skeleton] — used by the lint
    baseline ([promise-lint --baseline]) and the SARIF
    [partialFingerprints]. The driver salts with the target name so
    the same diagnostic in two files stays distinguishable. *)

val to_error : layer:string -> t -> Error.t
(** Lift into the typed error channel ([Invalid_operand], with the
    diagnostic code and span in the context) so pipelines fail closed. *)

val to_json : t -> string
(** One JSON object: [{"code":…,"severity":…,"span":…,"message":…}]. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)
