(** The monotonic clock behind watchdog deadlines and backoff waits.

    [Unix.gettimeofday] is a wall clock: NTP steps and manual
    adjustments move it, which turns a deadline check into a lottery on
    a machine whose clock is being disciplined. The supervision layer
    measures every elapsed interval against [CLOCK_MONOTONIC] instead
    (via a tiny C stub; platforms without it fall back to the wall
    clock). *)

val monotonic_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; never goes backwards
    on platforms with a monotonic clock. Only differences are
    meaningful. *)

val elapsed_ms : since:int64 -> float
(** [elapsed_ms ~since] — milliseconds between [since] (an earlier
    {!monotonic_ns} reading) and now. *)

val sleep_ms : float -> unit
(** Block the calling thread for (at least) the given milliseconds;
    negative or zero returns immediately. The supervision layer's
    default backoff sleep. *)
