type code =
  | Invalid_operand
  | Capacity
  | Unsupported
  | Fault
  | Timeout
  | Retry_exhausted
  | Overloaded
  | Stale_checkpoint
  | Internal

type t = {
  layer : string;
  code : code;
  message : string;
  context : (string * string) list;
}

let make ~layer ?(code = Internal) ?(context = []) message =
  { layer; code; message; context }

let fail ~layer ?code ?context message =
  Error (make ~layer ?code ?context message)

let of_string ~layer message = make ~layer message

let with_context t kvs = { t with context = t.context @ kvs }

let code_name = function
  | Invalid_operand -> "invalid-operand"
  | Capacity -> "capacity"
  | Unsupported -> "unsupported"
  | Fault -> "fault"
  | Timeout -> "timeout"
  | Retry_exhausted -> "retry-exhausted"
  | Overloaded -> "overloaded"
  | Stale_checkpoint -> "stale-checkpoint"
  | Internal -> "internal"

let to_string t =
  let ctx =
    match t.context with
    | [] -> ""
    | kvs ->
        " ["
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ "]"
  in
  Printf.sprintf "%s: %s%s" t.layer t.message ctx

let pp ppf t = Format.pp_print_string ppf (to_string t)

let to_invalid_arg = function
  | Ok v -> v
  | Error e -> invalid_arg (to_string e)
