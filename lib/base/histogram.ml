(* 64 linear sub-buckets per power of two (HDR-style): values below 64
   get exact integer buckets; above, a value with top bit m lands in
   sub-bucket [n lsr (m - 5)] of [32, 64), so the bucket width is
   2^(m-5) — at most 1/32 of the value.  62-bit ints need
   64 + 57 * 32 = 1888 buckets; the array is fixed at creation. *)

let n_buckets = 1920

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable minv : int;
  mutable maxv : int;
}

let create () =
  { counts = Array.make n_buckets 0; total = 0; sum = 0.0; minv = 0; maxv = 0 }

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.minv <- 0;
  t.maxv <- 0

let msb n =
  let r = ref 0 and v = ref n in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

let index_of n =
  if n < 64 then n
  else
    let m = msb n in
    let sub = n lsr (m - 5) in
    64 + ((m - 6) * 32) + (sub - 32)

(* Upper bound of bucket [idx] — the value [percentile] reports. *)
let bound_of idx =
  if idx < 64 then idx
  else
    let m = 6 + ((idx - 64) / 32) in
    let sub = 32 + ((idx - 64) mod 32) in
    ((sub + 1) lsl (m - 5)) - 1

let add t v =
  let n = max 0 (Float.to_int v) in
  t.counts.(index_of n) <- t.counts.(index_of n) + 1;
  if t.total = 0 || n < t.minv then t.minv <- n;
  if n > t.maxv then t.maxv <- n;
  t.total <- t.total + 1;
  t.sum <- t.sum +. float_of_int n

let count t = t.total
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let min_value t = float_of_int t.minv
let max_value t = float_of_int t.maxv

let percentile t q =
  if t.total = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.total))) in
    let acc = ref 0 and idx = ref 0 and found = ref (-1) in
    while !found < 0 && !idx < n_buckets do
      acc := !acc + t.counts.(!idx);
      if !acc >= rank then found := !idx;
      incr idx
    done;
    float_of_int (bound_of (max 0 !found))
  end

let buckets t =
  let acc = ref [] in
  for idx = n_buckets - 1 downto 0 do
    if t.counts.(idx) > 0 then
      acc := (float_of_int (bound_of idx), t.counts.(idx)) :: !acc
  done;
  !acc
