(** Typed validation for CLI flags and [PROMISE_*] environment
    variables.

    Junk input ("abc", "1e9", an out-of-range count) becomes an
    [Error.t] with [Invalid_operand] and enough context to print a
    one-line diagnostic — never a raised [Failure] from a bare
    [int_of_string], and never a silent fallback to a default that
    hides the typo. *)

val int_in_range :
  what:string -> min:int -> max:int -> string -> (int, Error.t) result
(** [int_in_range ~what ~min ~max s] — parse [s] (trimmed) as a
    decimal integer in [[min, max]]. [what] names the flag or variable
    in the error ("--jobs", "PROMISE_JOBS"). *)

val positive_int : what:string -> string -> (int, Error.t) result
(** [int_in_range ~min:1 ~max:max_int]. *)

val non_negative_float : what:string -> string -> (float, Error.t) result
(** Parse a finite float [>= 0] (deadlines in milliseconds). *)

val enum :
  what:string -> values:string list -> string -> (string, Error.t) result
(** [enum ~what ~values s] — [s] (trimmed, lowercased) must be one of
    [values]. Used by the [--lint-format] CLI flags. *)

val env_int :
  name:string -> min:int -> max:int -> (int option, Error.t) result
(** [env_int ~name ~min ~max] — [Ok None] when the variable is unset
    or blank, [Ok (Some v)] when it parses in range, an error
    otherwise. *)

val env_enum :
  name:string -> values:string list -> (string option, Error.t) result
(** Like {!env_int} for a closed set of (lowercased) values. *)

val all : (unit, Error.t) result list -> (unit, Error.t) result
(** First error wins; [Ok ()] when every check passes. *)
