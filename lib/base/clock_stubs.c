/* Monotonic clock for the supervision layer.

   CLOCK_MONOTONIC when the platform has it (Linux, BSD, macOS);
   gettimeofday otherwise.  The watchdog only ever subtracts two
   readings, so the fallback's susceptibility to wall-clock steps is a
   degradation, not a correctness bug. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value promise_clock_monotonic_ns(value unit)
{
  CAMLparam1(unit);
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000 +
                               (int64_t)ts.tv_nsec));
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    CAMLreturn(caml_copy_int64((int64_t)tv.tv_sec * 1000000000 +
                               (int64_t)tv.tv_usec * 1000));
  }
}
