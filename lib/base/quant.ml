(* The one 8-bit fixed-point quantizer of the design (paper §3.1): every
   digital-to-storage path — bit-cell writes, X-REG staging, the host
   runtime's operand quantization — rounds a normalized real to the same
   signed code grid. Bitcell_array, Machine and Ml.Fixed_point all
   delegate here so the three layers can never drift apart. *)

let bits = 8
let scale = 128.0

let quantize8 v =
  let code = int_of_float (Float.round (v *. scale)) in
  max (-128) (min 127 code)

let dequantize8 code = float_of_int code /. scale
