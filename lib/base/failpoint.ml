type policy =
  | Off
  | Fail_once
  | Fail_prob of float
  | Delay_ns of int64
  | Eintr

type fire = Fail | Delay of int64 | Interrupt

(* The stable site catalog. Names are an interface (tests, chaos
   schedules and CI greps depend on them); grow it, never rename. *)
let sites =
  [
    "ipc.read";
    "ipc.write";
    "checkpoint.save";
    "incident.write";
    "incident.rotate";
    "queue.admit";
    "serve.flush";
    "serve.dispatch";
    "machine.execute";
    "runtime.run";
  ]

(* ------------------------------------------------------------------ *)
(* Per-site splitmix64 decision streams                                *)
(* ------------------------------------------------------------------ *)

(* Same finalizer as Promise_analog.Rng (Steele, Lea & Flood 2014) —
   duplicated because lib/base sits below lib/analog. Only the mixing
   constants matter; the streams never have to match Rng's. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 53-bit uniform in [0,1) from a mutable stream state. *)
let next_float state =
  state := Int64.add !state golden_gamma;
  let z = mix !state in
  Int64.to_float (Int64.shift_right_logical z 11)
  *. (1.0 /. 9007199254740992.0)

(* The site stream's root folds the seed with the site name, so two
   sites armed in one run draw independent sequences and the check
   interleaving of one site never perturbs another's schedule. *)
let stream_root ~seed name =
  let h = ref (mix (Int64.of_int seed)) in
  String.iter
    (fun c -> h := mix (Int64.logxor !h (Int64.of_int (Char.code c))))
    name;
  !h

type site_state = {
  name : string;
  mutable policy : policy;
  rng : int64 ref;
  mutable hits : int;
  mutable fires : int;
}

(* [armed] flips only under [lock]; [check]'s fast path reads it with
   one atomic load and touches nothing else, so a production binary
   pays ~zero for the compiled-in sites. *)
let armed = Atomic.make false
let lock = Mutex.create ()
let table : (string, site_state) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let reset () =
  Mutex.protect lock (fun () ->
      Atomic.set armed false;
      Hashtbl.reset table;
      order := [])

let enabled () = Atomic.get armed

let fail_conf msg ctx =
  Error.fail ~layer:"failpoint" ~code:Error.Invalid_operand ~context:ctx msg

let validate_assignment (name, policy) =
  if not (List.mem name sites) then
    fail_conf "unknown failpoint site"
      [ ("site", name); ("known", String.concat " " sites) ]
  else
    match policy with
    | Fail_prob p when not (p >= 0.0 && p <= 1.0) ->
        fail_conf "fail_prob must be in [0, 1]"
          [ ("site", name); ("p", string_of_float p) ]
    | Delay_ns n when Int64.compare n 0L < 0 ->
        fail_conf "delay_ns must be >= 0"
          [ ("site", name); ("ns", Int64.to_string n) ]
    | _ -> Ok ()

let configure ?(seed = 0) assignments =
  let rec check_all = function
    | [] -> Ok ()
    | a :: rest -> (
        match validate_assignment a with
        | Error _ as e -> e
        | Ok () -> check_all rest)
  in
  match check_all assignments with
  | Error _ as e -> e
  | Ok () ->
      Mutex.protect lock (fun () ->
          Hashtbl.reset table;
          order := [];
          List.iter
            (fun (name, policy) ->
              if not (Hashtbl.mem table name) then
                order := name :: !order;
              Hashtbl.replace table name
                {
                  name;
                  policy;
                  rng = ref (stream_root ~seed name);
                  hits = 0;
                  fires = 0;
                })
            assignments;
          order := List.rev !order;
          Atomic.set armed (Hashtbl.length table > 0));
      Ok ()

(* ------------------------------------------------------------------ *)
(* The check                                                           *)
(* ------------------------------------------------------------------ *)

let check_armed name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table name with
      | None -> None
      | Some s ->
          s.hits <- s.hits + 1;
          let fired =
            match s.policy with
            | Off -> None
            | Fail_once ->
                s.policy <- Off;
                Some Fail
            | Fail_prob p -> if next_float s.rng < p then Some Fail else None
            | Delay_ns n -> Some (Delay n)
            | Eintr -> if next_float s.rng < 0.5 then Some Interrupt else None
          in
          (match fired with Some _ -> s.fires <- s.fires + 1 | None -> ());
          fired)

let check name = if Atomic.get armed then check_armed name else None

type stat = { site : string; hits : int; fires : int }

let stats () =
  Mutex.protect lock (fun () ->
      List.filter_map
        (fun name ->
          match Hashtbl.find_opt table name with
          | None -> None
          | Some s -> Some { site = s.name; hits = s.hits; fires = s.fires })
        !order)

(* ------------------------------------------------------------------ *)
(* The spec grammar: site:policy[,site:policy...]                      *)
(* ------------------------------------------------------------------ *)

let parse_policy ~clause s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Ok Off
  | "fail_once" -> Ok Fail_once
  | "eintr" -> Ok Eintr
  | p -> (
      match String.index_opt p '=' with
      | Some i -> (
          let key = String.sub p 0 i in
          let v = String.sub p (i + 1) (String.length p - i - 1) in
          match key with
          | "fail_prob" -> (
              match float_of_string_opt v with
              | Some f when f >= 0.0 && f <= 1.0 -> Ok (Fail_prob f)
              | _ ->
                  fail_conf "fail_prob needs a probability in [0, 1]"
                    [ ("clause", clause) ])
          | "delay_ns" -> (
              match Int64.of_string_opt v with
              | Some n when Int64.compare n 0L >= 0 -> Ok (Delay_ns n)
              | _ ->
                  fail_conf "delay_ns needs a non-negative integer"
                    [ ("clause", clause) ])
          | _ ->
              fail_conf "unknown failpoint policy"
                [ ("clause", clause); ("policy", key) ])
      | None ->
          fail_conf
            "expected off, fail_once, eintr, fail_prob=P or delay_ns=N"
            [ ("clause", clause); ("policy", p) ])

let parse_spec spec =
  let spec = String.trim spec in
  if spec = "" then Ok []
  else
    let clauses = String.split_on_char ',' spec in
    List.fold_left
      (fun acc clause ->
        match acc with
        | Error _ as e -> e
        | Ok parsed -> (
            let clause = String.trim clause in
            match String.index_opt clause ':' with
            | None ->
                fail_conf "expected site:policy" [ ("clause", clause) ]
            | Some i -> (
                let site = String.trim (String.sub clause 0 i) in
                let pol =
                  String.sub clause (i + 1) (String.length clause - i - 1)
                in
                match parse_policy ~clause pol with
                | Error _ as e -> e
                | Ok policy -> (
                    match validate_assignment (site, policy) with
                    | Error _ as e -> e
                    | Ok () -> Ok ((site, policy) :: parsed)))))
      (Ok []) clauses
    |> Result.map List.rev

let configure_spec ?seed spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok assignments -> configure ?seed assignments

let from_env ?seed () =
  match Sys.getenv_opt "PROMISE_FAILPOINTS" with
  | None -> Ok ()
  | Some s when String.trim s = "" -> Ok ()
  | Some s -> configure_spec ?seed s
