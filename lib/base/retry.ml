type policy = {
  max_attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  jitter : float;
  seed : int;
}

let policy ?(max_attempts = 3) ?(base_delay_ms = 50.0) ?(max_delay_ms = 2000.0)
    ?(jitter = 0.25) ~seed () =
  let fail msg ctx =
    Error.fail ~layer:"retry" ~code:Error.Invalid_operand ~context:ctx msg
  in
  if max_attempts < 1 then
    fail "max_attempts must be >= 1"
      [ ("max_attempts", string_of_int max_attempts) ]
  else if base_delay_ms < 0.0 || Float.is_nan base_delay_ms then
    fail "base_delay_ms must be >= 0"
      [ ("base_delay_ms", string_of_float base_delay_ms) ]
  else if max_delay_ms < base_delay_ms || Float.is_nan max_delay_ms then
    fail "max_delay_ms must be >= base_delay_ms"
      [
        ("base_delay_ms", string_of_float base_delay_ms);
        ("max_delay_ms", string_of_float max_delay_ms);
      ]
  else if jitter < 0.0 || jitter > 1.0 || Float.is_nan jitter then
    fail "jitter must be in [0, 1]" [ ("jitter", string_of_float jitter) ]
  else Ok { max_attempts; base_delay_ms; max_delay_ms; jitter; seed }

let no_retry ~seed =
  {
    max_attempts = 1;
    base_delay_ms = 0.0;
    max_delay_ms = 0.0;
    jitter = 0.0;
    seed;
  }

(* splitmix64 over (seed, attempt): the same finalizer the simulator's
   RNG uses, reimplemented here so lib/base stays dependency-free. *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

(* u in [-1, 1): 53 uniform bits scaled to [0,1), then affine *)
let jitter_unit ~seed ~attempt =
  let h =
    splitmix64 (Int64.add (Int64.of_int seed)
                  (Int64.mul 0x2545F4914F6CDD1DL (Int64.of_int attempt)))
  in
  let u53 = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 in
  (2.0 *. u53) -. 1.0

let backoff_ms p ~attempt =
  if attempt < 1 || p.max_attempts <= 1 then 0.0
  else begin
    let exp2 = if attempt - 1 >= 60 then infinity else Float.of_int (1 lsl (attempt - 1)) in
    let base = Float.min p.max_delay_ms (p.base_delay_ms *. exp2) in
    let d = base *. (1.0 +. (p.jitter *. jitter_unit ~seed:p.seed ~attempt)) in
    Float.max 0.0 d
  end

let schedule p =
  List.init (max 0 (p.max_attempts - 1)) (fun i -> backoff_ms p ~attempt:(i + 1))

let run ?(sleep = Clock.sleep_ms) ?(on_retry = fun ~attempt:_ ~delay_ms:_ _ -> ())
    p f =
  let rec go attempt =
    match f ~attempt with
    | Ok v -> Ok v
    | Error e when attempt < p.max_attempts ->
        let delay_ms = backoff_ms p ~attempt in
        on_retry ~attempt ~delay_ms e;
        sleep delay_ms;
        go (attempt + 1)
    | Error e ->
        let e =
          Error.with_context e
            [ ("attempts", string_of_int attempt);
              ("last-code", Error.code_name e.Error.code) ]
        in
        Error
          (if p.max_attempts > 1 then { e with Error.code = Error.Retry_exhausted }
           else e)
  in
  go 1
