(* Multi-process sharded execution with worker supervision.

   Topology: the parent forks [workers] children, each holding one
   pipe pair ({!Ipc} frames both ways). The parent is the only
   scheduler: it assigns shard indices to idle workers, select()s on
   the worker pipes for heartbeats and results, enforces per-shard
   deadlines and heartbeat liveness by SIGKILLing the offender, and
   replaces dead workers (after a deterministic {!Retry} backoff)
   until a shard has burned through [max_restarts] — at which point
   the shard is quarantined as a typed [Error] slot and its siblings
   continue.

   Children never touch the parent's buffered channels: stdio is
   flushed before every fork and workers leave through [Unix._exit],
   so a fleet's stdout is exactly the parent's (the CI `cmp` of a
   chaos-run against a clean run depends on this). *)

module Sup = Supervisor

type chaos = No_chaos | Kill_one

type config = {
  workers : int;
  shard_timeout_ms : float option;
  liveness_timeout_ms : float option;
  heartbeat_ms : float;
  max_restarts : int;
  restart_backoff : Retry.policy;
  incidents : Incident.t;
  checkpoint_dir : string option;
  resume : bool;
  chaos : chaos;
  stop : Sup.stop;
  sleep : float -> unit;
}

let default_backoff =
  (* max_attempts only caps Retry.run, which the fleet does not use;
     it must merely exceed 1 for backoff_ms to engage *)
  match
    Retry.policy ~max_attempts:16 ~base_delay_ms:50.0 ~max_delay_ms:1000.0
      ~seed:0 ()
  with
  | Ok p -> p
  | Error _ -> assert false

let config ?(workers = 2) ?shard_timeout_ms ?liveness_timeout_ms
    ?(heartbeat_ms = 100.0) ?(max_restarts = 2)
    ?(restart_backoff = default_backoff) ?(incidents = Incident.null)
    ?checkpoint_dir ?(resume = false) ?(chaos = No_chaos) ?stop
    ?(sleep = Clock.sleep_ms) () =
  let fail msg ctx =
    Error.fail ~layer:"fleet" ~code:Error.Invalid_operand ~context:ctx msg
  in
  let bad_timeout = function
    | Some t when t <= 0.0 || Float.is_nan t -> true
    | _ -> false
  in
  if workers < 1 || workers > 64 then
    fail "workers must be in 1..64" [ ("workers", string_of_int workers) ]
  else if heartbeat_ms <= 0.0 || Float.is_nan heartbeat_ms then
    fail "heartbeat_ms must be > 0"
      [ ("heartbeat_ms", string_of_float heartbeat_ms) ]
  else if max_restarts < 0 then
    fail "max_restarts must be >= 0"
      [ ("max_restarts", string_of_int max_restarts) ]
  else if bad_timeout shard_timeout_ms then
    fail "shard_timeout_ms must be > 0"
      [ ("shard_timeout_ms", string_of_float (Option.get shard_timeout_ms)) ]
  else if bad_timeout liveness_timeout_ms then
    fail "liveness_timeout_ms must be > 0"
      [
        ("liveness_timeout_ms", string_of_float (Option.get liveness_timeout_ms));
      ]
  else
    Ok
      {
        workers;
        shard_timeout_ms;
        liveness_timeout_ms;
        heartbeat_ms;
        max_restarts;
        restart_backoff;
        incidents;
        checkpoint_dir;
        resume;
        chaos;
        stop = (match stop with Some s -> s | None -> Sup.never_stop ());
        sleep;
      }

(* ------------------------------------------------------------------ *)
(* Shard helpers                                                       *)
(* ------------------------------------------------------------------ *)

let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let shard_seed ~seed ~shard =
  let h =
    splitmix64
      (Int64.add (Int64.of_int seed)
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (shard + 1))))
  in
  Int64.to_int (Int64.shift_right_logical h 1)

let ranges ~shards ~items =
  if shards < 1 || items < 0 then invalid_arg "Fleet.ranges";
  let k = min shards items in
  Array.init k (fun i ->
      let lo = i * items / k and hi = (i + 1) * items / k in
      (lo, hi - lo))

(* ------------------------------------------------------------------ *)
(* Wire messages                                                       *)
(* ------------------------------------------------------------------ *)

type down = Assign of int | Quit
type 'r up = Beat | Shard_result of int * ('r, Error.t) result

(* ------------------------------------------------------------------ *)
(* The worker (child) side                                             *)
(* ------------------------------------------------------------------ *)

let capture_shard_exn shard exn =
  let bt = String.trim (Printexc.get_backtrace ()) in
  let extra =
    match exn with
    | Pool.Item_failure { index; backtrace; _ } ->
        ("pool-item", string_of_int index)
        :: (if backtrace = "" then [] else [ ("item-backtrace", backtrace) ])
    | _ -> []
  in
  Error.make ~layer:"fleet-worker" ~code:Error.Internal
    ~context:
      (("shard", string_of_int shard)
      :: ("exn", Printexc.to_string exn)
      :: ((if bt = "" then [] else [ ("backtrace", bt) ]) @ extra))
    "shard function raised"

(* Runs in the forked child and never returns: the heartbeat domain
   beats until the main loop leaves, and the only exit is _exit (an
   [exit] would flush the parent's buffered channels a second time). *)
let worker_child ~heartbeat_ms ~from_parent ~to_parent ~f =
  let wlock = Mutex.create () in
  let stopping = Atomic.make false in
  let (_ : unit Domain.t) =
    Domain.spawn (fun () ->
        while not (Atomic.get stopping) do
          Clock.sleep_ms heartbeat_ms;
          if not (Atomic.get stopping) then
            ignore
              (Mutex.protect wlock (fun () -> Ipc.write to_parent (Beat : _ up)))
        done)
  in
  let rec loop () =
    match (Ipc.read from_parent : (down option, Error.t) result) with
    | Ok (Some (Assign shard)) -> (
        let result =
          try f ~shard with exn -> Error (capture_shard_exn shard exn)
        in
        match
          Mutex.protect wlock (fun () ->
              Ipc.write to_parent (Shard_result (shard, result)))
        with
        | Ok () -> loop ()
        | Error _ -> () (* parent gone *))
    | Ok (Some Quit) | Ok None | Error _ -> ()
  in
  loop ();
  Atomic.set stopping true;
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* The parent side                                                     *)
(* ------------------------------------------------------------------ *)

type worker_slot = {
  slot : int;
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  mutable shard : int option;
  mutable started_ns : int64;
  mutable beat_ns : int64;
  mutable alive : bool;
}

let ms_since t = Int64.to_float (Int64.sub (Clock.monotonic_ns ()) t) /. 1e6

let status_string = function
  | Unix.WEXITED n -> "exit:" ^ string_of_int n
  | Unix.WSIGNALED s ->
      "signal:"
      ^
      if s = Sys.sigkill then "sigkill"
      else if s = Sys.sigterm then "sigterm"
      else if s = Sys.sigsegv then "sigsegv"
      else if s = Sys.sigint then "sigint"
      else string_of_int s
  | Unix.WSTOPPED s -> "stopped:" ^ string_of_int s

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let spawn_worker cfg ~live ~slot ~f =
  let p2c_r, p2c_w = Unix.pipe ~cloexec:false () in
  let c2p_r, c2p_w = Unix.pipe ~cloexec:false () in
  (* the child inherits the parent's buffered channels: flush now so
     it cannot carry (and never re-emit) half-written output *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         close_quiet p2c_w;
         close_quiet c2p_r;
         List.iter
           (fun w ->
             close_quiet w.to_w;
             close_quiet w.from_w)
           live;
         worker_child ~heartbeat_ms:cfg.heartbeat_ms ~from_parent:p2c_r
           ~to_parent:c2p_w ~f
       with _ -> ());
      Unix._exit 1
  | pid ->
      close_quiet p2c_r;
      close_quiet c2p_w;
      Incident.record cfg.incidents Incident.Worker_spawn
        [ ("pid", string_of_int pid); ("slot", string_of_int slot) ];
      let now = Clock.monotonic_ns () in
      {
        slot;
        pid;
        to_w = p2c_w;
        from_w = c2p_r;
        shard = None;
        started_ns = now;
        beat_ns = now;
        alive = true;
      }

(* ------------------------------------------------------------------ *)
(* Outcome types                                                       *)
(* ------------------------------------------------------------------ *)

type shard_timing = {
  t_shard : int;
  t_ms : float;
  t_attempts : int;
  t_resumed : bool;
}

type summary = {
  shards : int;
  workers : int;
  restarts : int;
  resumed : int;
  quarantined : int;
  total_ms : float;
  timings : shard_timing array;
}

type 'r outcome =
  | Fleet_done of ('r, Error.t) result array * summary
  | Fleet_interrupted of { completed : int; total : int }
  | Fleet_rejected of Error.t

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let shard_path dir shard = Filename.concat dir (Printf.sprintf "shard-%04d.ckpt" shard)

let shard_digest ~digest ~shards ~shard =
  Checkpoint.digest_of_config ~kind:"fleet-shard"
    [ digest; string_of_int shards; string_of_int shard ]

let ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
  | exception Unix.Unix_error (err, _, _) ->
      Error.fail ~layer:"fleet" ~code:Error.Invalid_operand
        ~context:[ ("dir", dir) ]
        ("cannot create checkpoint dir: " ^ Unix.error_message err)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run ?(on_shard_done = fun ~shard:_ ~completed:_ ~total:_ -> ())
    (cfg : config) ~digest ~shards ~f =
  if shards < 1 then
    Fleet_rejected
      (Error.make ~layer:"fleet" ~code:Error.Invalid_operand
         ~context:[ ("shards", string_of_int shards) ]
         "shards must be >= 1")
  else begin
    let inc = cfg.incidents in
    let results = Array.make shards None in
    let deaths = Array.make shards 0 in
    let ms_arr = Array.make shards 0.0 in
    let resumed_flag = Array.make shards false in
    let restarts = ref 0 in
    let quarantined = ref 0 in
    let done_live = ref 0 in
    let count_done () =
      Array.fold_left (fun n o -> if o = None then n else n + 1) 0 results
    in
    (* resume: load per-shard checkpoints before forking anything *)
    let load_result =
      match cfg.checkpoint_dir with
      | None -> Ok ()
      | Some dir -> (
          match ensure_dir dir with
          | Error e -> Error e
          | Ok () ->
              if not cfg.resume then Ok ()
              else begin
                let err = ref None in
                for s = 0 to shards - 1 do
                  if !err = None then
                    let path = shard_path dir s in
                    if Checkpoint.exists path then
                      match
                        Checkpoint.load ~path
                          ~config_digest:(shard_digest ~digest ~shards ~shard:s)
                      with
                      | Ok r ->
                          results.(s) <- Some (Ok r);
                          resumed_flag.(s) <- true
                      | Error e ->
                          Incident.record inc Incident.Checkpoint_stale
                            [ ("path", path); ("error", Error.to_string e) ];
                          err := Some e
                done;
                match !err with None -> Ok () | Some e -> Error e
              end)
    in
    match load_result with
    | Error e -> Fleet_rejected e
    | Ok () ->
        let resumed = count_done () in
        if resumed > 0 then
          Incident.record inc Incident.Checkpoint_resume
            [ ("what", "fleet"); ("resumed", string_of_int resumed) ];
        let pending = Queue.create () in
        for s = 0 to shards - 1 do
          if results.(s) = None then Queue.push s pending
        done;
        let n_workers = max 1 (min cfg.workers (max 1 (Queue.length pending))) in
        Incident.record inc Incident.Run_start
          [
            ("what", "fleet");
            ("shards", string_of_int shards);
            ("workers", string_of_int n_workers);
            ("resumed", string_of_int resumed);
          ];
        let t0 = Clock.monotonic_ns () in
        let finish_summary () =
          {
            shards;
            workers = n_workers;
            restarts = !restarts;
            resumed;
            quarantined = !quarantined;
            total_ms = ms_since t0;
            timings =
              Array.init shards (fun s ->
                  {
                    t_shard = s;
                    t_ms = ms_arr.(s);
                    t_attempts = deaths.(s) + 1;
                    t_resumed = resumed_flag.(s);
                  });
          }
        in
        if Queue.is_empty pending then begin
          (* everything came from checkpoints, which only ever hold Ok
             payloads — the run is fully successful, drop them *)
          (match cfg.checkpoint_dir with
          | Some dir ->
              for s = 0 to shards - 1 do
                Checkpoint.remove (shard_path dir s)
              done
          | None -> ());
          Incident.record inc Incident.Run_end
            [ ("what", "fleet"); ("shards", string_of_int shards) ];
          Fleet_done
            (Array.map (function Some r -> r | None -> assert false) results,
             finish_summary ())
        end
        else begin
          (* worker death must surface as EPIPE/EOF, not kill the parent *)
          let old_sigpipe =
            try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
            with Invalid_argument _ | Sys_error _ -> None
          in
          let restore_sigpipe () =
            match old_sigpipe with
            | Some b -> (
                try Sys.set_signal Sys.sigpipe b
                with Invalid_argument _ | Sys_error _ -> ())
            | None -> ()
          in
          let workers = Array.make n_workers None in
          let live_workers () =
            Array.to_list workers
            |> List.filter_map (fun o ->
                   match o with Some w when w.alive -> Some w | _ -> None)
          in
          let spawn_into slot =
            workers.(slot) <-
              Some (spawn_worker cfg ~live:(live_workers ()) ~slot ~f)
          in
          for slot = 0 to n_workers - 1 do
            spawn_into slot
          done;
          let chaos_fired = ref false in
          let record_done s res ms pid =
            if results.(s) = None then begin
              results.(s) <- Some res;
              ms_arr.(s) <- ms;
              incr done_live;
              Incident.record inc Incident.Shard_done
                [
                  ("shard", string_of_int s);
                  ("ms", Printf.sprintf "%.1f" ms);
                  ("pid", string_of_int pid);
                  ("attempts", string_of_int (deaths.(s) + 1));
                ];
              (match (cfg.checkpoint_dir, res) with
              | Some dir, Ok r -> (
                  match
                    Checkpoint.save ~path:(shard_path dir s)
                      ~config_digest:(shard_digest ~digest ~shards ~shard:s)
                      r
                  with
                  | Ok () ->
                      Incident.record inc Incident.Checkpoint_write
                        [
                          ("path", shard_path dir s);
                          ("shards_done", string_of_int (count_done ()));
                          ("total", string_of_int shards);
                        ]
                  | Error e ->
                      (* losing persistence degrades, it does not abort *)
                      Incident.record inc Incident.Degradation
                        [
                          ("what", "shard checkpoint write failed");
                          ("error", Error.to_string e);
                        ])
              | _ -> ());
              on_shard_done ~shard:s ~completed:(count_done ()) ~total:shards
            end
          in
          let handle_death w ~reason =
            if w.alive then begin
              w.alive <- false;
              close_quiet w.to_w;
              close_quiet w.from_w;
              let status =
                match Unix.waitpid [] w.pid with
                | _, st -> status_string st
                | exception Unix.Unix_error _ -> "unknown"
              in
              incr restarts;
              Incident.record inc Incident.Worker_death
                ([
                   ("pid", string_of_int w.pid);
                   ("slot", string_of_int w.slot);
                   ("status", status);
                   ("reason", reason);
                 ]
                @
                match w.shard with
                | Some s -> [ ("shard", string_of_int s) ]
                | None -> []);
              (match w.shard with
              | None -> ()
              | Some s ->
                  w.shard <- None;
                  deaths.(s) <- deaths.(s) + 1;
                  if deaths.(s) > cfg.max_restarts then begin
                    record_done s
                      (Error
                         (Error.make ~layer:"fleet" ~code:Error.Retry_exhausted
                            ~context:
                              [
                                ("shard", string_of_int s);
                                ("attempts", string_of_int deaths.(s));
                                ("last-status", status);
                                ("reason", reason);
                              ]
                            "shard workers died repeatedly; shard quarantined"))
                      0.0 w.pid;
                    incr quarantined;
                    Incident.record inc Incident.Quarantine
                      [
                        ("shard", string_of_int s);
                        ("attempts", string_of_int deaths.(s));
                      ]
                  end
                  else begin
                    Queue.push s pending;
                    let delay =
                      Retry.backoff_ms cfg.restart_backoff ~attempt:deaths.(s)
                    in
                    Incident.record inc Incident.Retry
                      [
                        ("shard", string_of_int s);
                        ("attempt", string_of_int deaths.(s));
                        ("delay_ms", Printf.sprintf "%.1f" delay);
                      ];
                    cfg.sleep delay
                  end);
              if count_done () < shards && not (Sup.stop_requested cfg.stop)
              then spawn_into w.slot
            end
          in
          let kill_worker w ~reason =
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            handle_death w ~reason
          in
          let assign_idle () =
            Array.iter
              (fun o ->
                match o with
                | Some w when w.alive && w.shard = None -> (
                    if not (Queue.is_empty pending) then
                      let s = Queue.pop pending in
                      match Ipc.write w.to_w (Assign s) with
                      | Ok () ->
                          let now = Clock.monotonic_ns () in
                          w.shard <- Some s;
                          w.started_ns <- now;
                          w.beat_ns <- now
                      | Error _ ->
                          Queue.push s pending;
                          handle_death w ~reason:"assign-write-failed")
                | _ -> ())
              workers
          in
          let receive () =
            let fds = List.map (fun w -> w.from_w) (live_workers ()) in
            if fds = [] then ()
            else
              let readable =
                match Unix.select fds [] [] 0.05 with
                | r, _, _ -> r
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
              in
              List.iter
                (fun fd ->
                  match
                    List.find_opt
                      (fun w -> w.alive && w.from_w == fd)
                      (live_workers ())
                  with
                  | None -> ()
                  | Some w -> (
                      match (Ipc.read w.from_w : (_ up option, Error.t) result) with
                      | Ok (Some Beat) -> w.beat_ns <- Clock.monotonic_ns ()
                      | Ok (Some (Shard_result (s, res))) ->
                          w.beat_ns <- Clock.monotonic_ns ();
                          record_done s res (ms_since w.started_ns) w.pid;
                          w.shard <- None
                      | Ok None -> handle_death w ~reason:"eof"
                      | Error _ -> handle_death w ~reason:"read-error"))
                readable
          in
          let enforce_deadlines () =
            Array.iter
              (fun o ->
                match o with
                | Some w when w.alive -> (
                    (match (w.shard, cfg.shard_timeout_ms) with
                    | Some s, Some tmo when ms_since w.started_ns > tmo ->
                        Incident.record inc Incident.Timeout
                          [
                            ("shard", string_of_int s);
                            ("pid", string_of_int w.pid);
                            ( "elapsed_ms",
                              Printf.sprintf "%.1f" (ms_since w.started_ns) );
                            ("timeout_ms", Printf.sprintf "%.1f" tmo);
                            ("phase", "shard-deadline");
                          ];
                        kill_worker w ~reason:"shard-deadline"
                    | _ -> ());
                    if w.alive then
                      match cfg.liveness_timeout_ms with
                      | Some lv when ms_since w.beat_ns > lv ->
                          Incident.record inc Incident.Timeout
                            [
                              ("pid", string_of_int w.pid);
                              ( "silent_ms",
                                Printf.sprintf "%.1f" (ms_since w.beat_ns) );
                              ("timeout_ms", Printf.sprintf "%.1f" lv);
                              ("phase", "heartbeat-liveness");
                            ];
                          kill_worker w ~reason:"heartbeat-liveness"
                      | _ -> ())
                | _ -> ())
              workers
          in
          let maybe_chaos () =
            if cfg.chaos = Kill_one && not !chaos_fired then
              match
                List.find_opt (fun w -> w.shard <> None) (live_workers ())
              with
              | Some w when !done_live >= 1 || shards = 1 ->
                  chaos_fired := true;
                  Incident.record inc Incident.Chaos
                    ([ ("pid", string_of_int w.pid) ]
                    @
                    match w.shard with
                    | Some s -> [ ("shard", string_of_int s) ]
                    | None -> []);
                  kill_worker w ~reason:"chaos-kill-one"
              | _ -> ()
          in
          let shutdown_workers ~graceful =
            Array.iter
              (fun o ->
                match o with
                | Some w when w.alive ->
                    if graceful then ignore (Ipc.write w.to_w Quit)
                    else (
                      try Unix.kill w.pid Sys.sigkill
                      with Unix.Unix_error _ -> ());
                    close_quiet w.to_w;
                    close_quiet w.from_w;
                    (try ignore (Unix.waitpid [] w.pid)
                     with Unix.Unix_error _ -> ());
                    w.alive <- false
                | _ -> ())
              workers
          in
          let interrupted () =
            Incident.record inc Incident.Signal
              [
                ( "signal",
                  match Sup.stop_signal cfg.stop with
                  | Some n -> Sup.signal_name n
                  | None -> "request" );
                ("shards_done", string_of_int (count_done ()));
                ("total", string_of_int shards);
              ];
            shutdown_workers ~graceful:false;
            restore_sigpipe ();
            Fleet_interrupted { completed = count_done (); total = shards }
          in
          let rec loop () =
            if Sup.stop_requested cfg.stop then interrupted ()
            else if count_done () >= shards then begin
              shutdown_workers ~graceful:true;
              restore_sigpipe ();
              (* a fully-Ok fleet owes nothing to a resume; any Error
                 slot keeps its siblings' checkpoints so a later
                 --resume retries only the failures *)
              let all_ok =
                Array.for_all
                  (function Some (Ok _) -> true | _ -> false)
                  results
              in
              (match cfg.checkpoint_dir with
              | Some dir when all_ok ->
                  for s = 0 to shards - 1 do
                    Checkpoint.remove (shard_path dir s)
                  done
              | _ -> ());
              Incident.record inc Incident.Run_end
                [
                  ("what", "fleet");
                  ("shards", string_of_int shards);
                  ("restarts", string_of_int !restarts);
                  ("quarantined", string_of_int !quarantined);
                ];
              Fleet_done
                ( Array.map
                    (function Some r -> r | None -> assert false)
                    results,
                  finish_summary () )
            end
            else begin
              assign_idle ();
              receive ();
              enforce_deadlines ();
              maybe_chaos ();
              loop ()
            end
          in
          loop ()
        end
  end
