(** Crash-isolated fleet execution: sharded campaigns across forked
    worker processes, supervised and resumable.

    Everything {!Supervisor} protects runs in {e one} process: a
    segfault, an OOM kill or a [kill -9] still loses the whole run.
    [Fleet] is the next isolation ring out. It forks [workers] OS
    processes, shards a workload of [shards] independent units across
    them over {!Ipc} pipes, and supervises the processes themselves:

    - {e liveness}: each worker sends heartbeats from a side domain;
      a worker silent past [liveness_timeout_ms] is SIGKILLed and
      handled like any other death;
    - {e deadlines}: a shard in flight past [shard_timeout_ms] gets
      its worker SIGKILLed (a forked worker, unlike an OCaml domain,
      {e can} be killed);
    - {e restart}: a dead worker (exit, signal, kill -9) is replaced
      after a deterministic {!Retry} backoff and its in-flight shard
      is re-queued, up to [max_restarts] attempts per shard;
    - {e quarantine}: a shard whose workers keep dying is isolated as
      a typed [Error] slot ([Retry_exhausted]) — its siblings finish;
    - {e checkpointing}: with a [checkpoint_dir], every completed
      shard is persisted through {!Checkpoint} as its own file, so a
      killed or preempted fleet resumes only its incomplete shards.

    Determinism: the shard function must depend only on its shard
    index (derive per-shard RNG streams with {!shard_seed}), and
    results are aggregated shard-major whatever the completion order —
    so a fleet that lost workers, was killed and resumed produces the
    same result array, bit for bit, as an uninterrupted run. *)

type chaos =
  | No_chaos
  | Kill_one
      (** self-test mode: once mid-run, SIGKILL a busy worker and let
          supervision prove the run still completes identically *)

type config = private {
  workers : int;  (** forked worker processes (clamped to [shards]) *)
  shard_timeout_ms : float option;  (** per-shard deadline; None = off *)
  liveness_timeout_ms : float option;
      (** max heartbeat silence before a worker is presumed wedged *)
  heartbeat_ms : float;  (** worker heartbeat period *)
  max_restarts : int;  (** extra attempts per shard after its first *)
  restart_backoff : Retry.policy;  (** wait before respawning a worker *)
  incidents : Incident.t;
  checkpoint_dir : string option;
  resume : bool;  (** load per-shard checkpoints before starting *)
  chaos : chaos;
  stop : Supervisor.stop;  (** polled every scheduler tick *)
  sleep : float -> unit;  (** backoff sleep (ms); injectable for tests *)
}

val config :
  ?workers:int ->
  ?shard_timeout_ms:float ->
  ?liveness_timeout_ms:float ->
  ?heartbeat_ms:float ->
  ?max_restarts:int ->
  ?restart_backoff:Retry.policy ->
  ?incidents:Incident.t ->
  ?checkpoint_dir:string ->
  ?resume:bool ->
  ?chaos:chaos ->
  ?stop:Supervisor.stop ->
  ?sleep:(float -> unit) ->
  unit ->
  (config, Error.t) result
(** Defaults: 2 workers, no deadlines, 100 ms heartbeats, 2 restarts
    per shard, 50-ms-base backoff (seed 0), null incident sink, no
    checkpointing, no chaos, a stop flag nothing raises. Validated:
    [workers] in 1..64, [heartbeat_ms] > 0, [max_restarts] >= 0,
    timeouts positive when given. *)

val shard_seed : seed:int -> shard:int -> int
(** A per-shard split of a campaign seed (splitmix64 finalizer):
    deterministic, and distinct shards get decorrelated streams. *)

val ranges : shards:int -> items:int -> (int * int) array
(** [ranges ~shards ~items] — [items] split into at most [shards]
    contiguous [(offset, length)] slices whose lengths differ by at
    most one; empty slices are dropped (so the array can be shorter
    than [shards] when [items < shards]). *)

type shard_timing = {
  t_shard : int;
  t_ms : float;  (** wall ms of the successful attempt; 0 when resumed *)
  t_attempts : int;  (** 1 + restarts this shard consumed *)
  t_resumed : bool;  (** loaded from a checkpoint, not computed *)
}

type summary = {
  shards : int;
  workers : int;  (** effective worker count after clamping *)
  restarts : int;  (** worker deaths observed (incl. chaos kills) *)
  resumed : int;  (** shards loaded from checkpoints *)
  quarantined : int;  (** shards isolated as [Error] slots *)
  total_ms : float;  (** aggregate wall time of the fleet run *)
  timings : shard_timing array;  (** shard-major *)
}

type 'r outcome =
  | Fleet_done of ('r, Error.t) result array * summary
      (** every shard accounted for, shard-major; [Error] slots are
          quarantined shards *)
  | Fleet_interrupted of { completed : int; total : int }
      (** the stop flag was raised; completed shards are in the
          checkpoint dir (when configured) *)
  | Fleet_rejected of Error.t
      (** invalid request, or a checkpoint from a different run
          configuration *)

val run :
  ?on_shard_done:(shard:int -> completed:int -> total:int -> unit) ->
  config ->
  digest:string ->
  shards:int ->
  f:(shard:int -> ('r, Error.t) result) ->
  'r outcome
(** Execute [f] for every shard index in [0 .. shards-1] across the
    worker fleet. [f] runs in a forked child; it must be deterministic
    in [shard] and its result must survive [Marshal] (plain data, no
    closures). [digest] guards the checkpoints ({!Checkpoint.digest_of_config});
    a checkpoint dir holding shards of a different digest rejects the
    run. A fleet whose slots are all [Ok] removes its checkpoints; any
    [Error] slot (quarantined, or [f] returned [Error]) keeps its
    siblings' checkpoints so a later [resume] retries only the
    failures.
    SIGPIPE is ignored for the duration of the run (worker death must
    surface as a typed error, not kill the parent).

    [on_shard_done] fires in the parent once per shard slot as it is
    filled — computed, resumed-from-checkpoint shards excluded, or
    quarantined — for progress output and test instrumentation.

    OCaml 5 forbids [Unix.fork] in a process that has ever spawned
    another domain, so [run] must be called before any {!Pool} pool or
    {!Supervisor} live watchdog exists in the process. The workers'
    own heartbeat domains live in the children and do not restrict the
    parent. *)
