(** Structured, typed errors shared across the stack.

    Every layer (machine, compiler runtime, backend, CLI tools) reports
    recoverable failures as [('a, Error.t) result] rather than raising
    [Invalid_argument]: the error names the layer it came from, a coarse
    classification usable for recovery decisions, and key/value context
    for diagnostics. Exceptions remain only for true programming
    contracts (e.g. indexing a bank that does not exist). *)

type code =
  | Invalid_operand  (** a parameter is out of its documented range *)
  | Capacity  (** the request exceeds the machine/layout resources *)
  | Unsupported  (** a legal request the implementation cannot map *)
  | Fault  (** a hardware fault surfaced (canary miss, BIST failure) *)
  | Timeout  (** a supervised work item exceeded its deadline *)
  | Retry_exhausted  (** the bounded retry/backoff budget ran out *)
  | Overloaded
      (** the service is shedding load (queue dwell over budget, or a
          circuit breaker is open); the context carries a
          [retry-after-ms] hint — retrying later is expected to work *)
  | Stale_checkpoint
      (** a checkpoint's run-configuration digest does not match the
          current run: resuming it would silently mix incompatible
          results *)
  | Internal  (** wrapped legacy string error, no finer classification *)

type t = {
  layer : string;  (** originating layer, e.g. "machine", "runtime" *)
  code : code;
  message : string;
  context : (string * string) list;  (** key/value diagnostics *)
}

(** [make ~layer ?code ?context message] — [code] defaults to
    [Internal]. *)
val make : layer:string -> ?code:code -> ?context:(string * string) list -> string -> t

(** [fail ~layer ?code ?context message] — [Error (make ...)]. *)
val fail :
  layer:string ->
  ?code:code ->
  ?context:(string * string) list ->
  string ->
  ('a, t) result

(** [of_string ~layer msg] — wrap a legacy string error ([Internal]). *)
val of_string : layer:string -> string -> t

(** [with_context t kvs] — append context pairs. *)
val with_context : t -> (string * string) list -> t

val code_name : code -> string

(** [to_string t] — ["layer: message [k=v, ...]"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [to_invalid_arg r] — unwrap, raising [Invalid_argument (to_string e)]
    on [Error e]: the bridge for callers that still want the legacy
    exception behavior. *)
val to_invalid_arg : ('a, t) result -> 'a
