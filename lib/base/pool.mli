(** A fixed-size domain work pool with deterministic result ordering.

    The pool exploits OCaml 5 Domains for the coarse-grained
    parallelism of the simulator: independent banks of a multi-bank
    Task, independent report sections, independent fault-campaign
    cells. Results always come back in input order, and the work
    functions passed to {!map_list} / {!map_array} are expected to be
    deterministic functions of their input (every stochastic model in
    the simulator draws from an explicit per-bank {!Promise: rng}
    stream), so a run is bit-for-bit identical at any [jobs] count.

    A pool of [jobs = 1] never spawns a domain and runs everything in
    the caller; this is the reference ordering the parallel paths are
    tested against.

    Nested use is safe: a map issued from inside a pool task runs
    sequentially in that task's domain instead of deadlocking on the
    shared workers. *)

type t

exception
  Item_failure of {
    index : int;  (** which input element blew up *)
    exn : exn;  (** the original exception *)
    backtrace : string;  (** the item's captured backtrace, printed *)
  }
(** What {!map_array}/{!map_list} raise when a work item escapes with
    an exception: the failing item's index and its captured backtrace
    travel with the original exception, so a campaign failure names
    the exact grid cell instead of an anonymous ["Failure boom"].
    Raised identically by the sequential and parallel paths (a nested
    failure wraps once per map level); a printer is registered. *)

val sequential : t
(** The jobs = 1 pool: no domains, inline execution. *)

val create : jobs:int -> t
(** [create ~jobs] — a pool running at most [jobs] tasks concurrently
    ([jobs - 1] worker domains plus the calling domain). Raises
    [Invalid_argument] unless [1 <= jobs <= 64]. [create ~jobs:1]
    returns a pool equivalent to {!sequential}. *)

val jobs : t -> int
(** Concurrency of the pool (1 for {!sequential}). *)

val is_parallel : t -> bool
(** [jobs t > 1]. *)

val default_jobs : unit -> int
(** [PROMISE_JOBS] from the environment when set and positive,
    otherwise [Domain.recommended_domain_count ()], clamped to 64. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f arr] — apply [f] to every element, possibly
    concurrently; [(map_array t f arr).(i) = f arr.(i)] positionally.
    The first exception raised by any [f] is re-raised in the caller
    (with its backtrace) after the batch has drained, wrapped in
    {!Item_failure} carrying the item index. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** List analogue of {!map_array}. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; {!sequential} is a no-op.
    Using the pool after [shutdown] raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] — [create], run [f], always [shutdown]. *)
