(** Atomic checkpoint files for resumable long-running runs.

    A checkpoint is a single file holding a header (magic, format
    version, a digest of the run configuration) followed by a
    marshalled payload. Writes are crash-safe: the bytes go to a
    pid-tagged temporary in the same directory, are fsync'd, and the
    temporary is renamed over the destination — a reader never sees a
    half-written checkpoint, and a SIGKILL mid-write leaves the
    previous checkpoint intact.

    The configuration digest is the staleness guard: {!load} compares
    the digest stored in the file against the digest of the {e
    current} run configuration and refuses ([Stale_checkpoint]) to
    resume progress recorded under different scenarios, benchmarks,
    sections or code version. Rejecting loudly beats silently mixing
    two runs' results.

    The payload goes through [Marshal], so {!load} is only type-safe
    when the saving and loading code agree on the payload type — pair
    every distinct payload type with its own [kind] string (it is
    folded into the digest). *)

val digest_of_config : kind:string -> string list -> string
(** [digest_of_config ~kind parts] — hex MD5 over the payload [kind]
    tag, the library version, and every configuration part. Order
    matters; change anything and old checkpoints are rejected. *)

val save :
  path:string -> config_digest:string -> 'a -> (unit, Error.t) result
(** Atomically persist the payload: write temp, fsync, rename, then
    fsync the containing directory so the rename itself is durable
    across a power cut (best-effort: filesystems that refuse directory
    fsync do not fail the save). *)

val load : path:string -> config_digest:string -> ('a, Error.t) result
(** Read a checkpoint back. Errors: [Invalid_operand] when the file is
    missing, unreadable, or not a checkpoint; [Stale_checkpoint] when
    the stored digest differs from [config_digest]. *)

val exists : string -> bool

val remove : string -> unit
(** Delete a checkpoint (and any leftover temporary); missing files
    are fine. Called after a run completes so a later run does not
    resume finished work. *)

(** Test-only observability. *)
module For_tests : sig
  val dir_fsyncs : int ref
  (** Successful directory fsyncs performed by {!save} in this
      process. *)
end
