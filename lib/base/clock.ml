external monotonic_ns : unit -> int64 = "promise_clock_monotonic_ns"

let elapsed_ms ~since =
  Int64.to_float (Int64.sub (monotonic_ns ()) since) /. 1e6

let sleep_ms ms = if ms > 0.0 then Unix.sleepf (ms /. 1000.0)
