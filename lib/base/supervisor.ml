type config = {
  timeout_ms : float option;
  enforce_timeout : bool;
  retry : Retry.policy;
  incidents : Incident.t;
  clock : unit -> int64;
  sleep : float -> unit;
  watchdog_poll_ms : float;
  live_watchdog : bool;
}

let config ?timeout_ms ?(enforce_timeout = true)
    ?(retry = Retry.no_retry ~seed:0) ?(incidents = Incident.null)
    ?(clock = Clock.monotonic_ns) ?(sleep = Clock.sleep_ms)
    ?(watchdog_poll_ms = 50.0) ?(live_watchdog = true) () =
  {
    timeout_ms;
    enforce_timeout;
    retry;
    incidents;
    clock;
    sleep;
    watchdog_poll_ms;
    live_watchdog;
  }

let ms_between ~clock ~since = Int64.to_float (Int64.sub (clock ()) since) /. 1e6

let capture_exn ~label exn =
  let bt = String.trim (Printexc.get_backtrace ()) in
  (* A pool failure carries the *item's* backtrace, captured on the
     worker domain before the exception crossed the join — surface it
     separately or it is lost (the ambient backtrace here only shows
     the join point). *)
  let pool_ctx =
    match exn with
    | Pool.Item_failure { index; backtrace; _ } ->
        ("pool-item", string_of_int index)
        ::
        (let ib = String.trim backtrace in
         if ib = "" then [] else [ ("item-backtrace", ib) ])
    | _ -> []
  in
  Error.make ~layer:"supervisor" ~code:Error.Internal
    ~context:
      (( "item", label )
      :: ("exn", Printexc.to_string exn)
      :: ((if bt = "" then [] else [ ("backtrace", bt) ]) @ pool_ctx))
    "work item raised"

let supervise cfg ~label f =
  let timed ~attempt =
    let t0 = cfg.clock () in
    let result = try f ~attempt with exn -> Error (capture_exn ~label exn) in
    let elapsed = ms_between ~clock:cfg.clock ~since:t0 in
    match cfg.timeout_ms with
    | Some tmo when elapsed > tmo ->
        Incident.record cfg.incidents Incident.Timeout
          [
            ("item", label);
            ("attempt", string_of_int attempt);
            ("elapsed_ms", Printf.sprintf "%.1f" elapsed);
            ("timeout_ms", Printf.sprintf "%.1f" tmo);
            ("phase", "completed");
          ];
        if cfg.enforce_timeout then
          Error
            (Error.make ~layer:"supervisor" ~code:Error.Timeout
               ~context:
                 [
                   ("item", label);
                   ("attempt", string_of_int attempt);
                   ("elapsed_ms", Printf.sprintf "%.1f" elapsed);
                   ("timeout_ms", Printf.sprintf "%.1f" tmo);
                 ]
               "work item exceeded its deadline")
        else result
    | _ -> result
  in
  let on_retry ~attempt ~delay_ms (e : Error.t) =
    Incident.record cfg.incidents Incident.Retry
      [
        ("item", label);
        ("attempt", string_of_int attempt);
        ("delay_ms", Printf.sprintf "%.1f" delay_ms);
        ("error", Error.to_string e);
      ]
  in
  match Retry.run ~sleep:cfg.sleep ~on_retry cfg.retry timed with
  | Ok v -> Ok v
  | Error e ->
      let e = Error.with_context e [ ("item", label) ] in
      Incident.record cfg.incidents Incident.Quarantine
        [ ("item", label); ("error", Error.to_string e) ];
      Error e

(* ------------------------------------------------------------------ *)
(* Supervised map with a live watchdog                                 *)
(* ------------------------------------------------------------------ *)

let map_result ?(pool = Pool.sequential) cfg ~label f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    (* per-item in-flight start stamp (0 = idle) for the watchdog *)
    let starts = Array.init n (fun _ -> Atomic.make 0L) in
    let flagged = Array.init n (fun _ -> Atomic.make false) in
    let wd_stop = Atomic.make false in
    let watchdog tmo =
      Domain.spawn (fun () ->
          while not (Atomic.get wd_stop) do
            Clock.sleep_ms (Float.max 1.0 cfg.watchdog_poll_ms);
            for i = 0 to n - 1 do
              let s = Atomic.get starts.(i) in
              if Int64.compare s 0L <> 0 && not (Atomic.get flagged.(i)) then begin
                let elapsed = ms_between ~clock:cfg.clock ~since:s in
                if elapsed > tmo then begin
                  Atomic.set flagged.(i) true;
                  Incident.record cfg.incidents Incident.Timeout
                    [
                      ("item", label i);
                      ("elapsed_ms", Printf.sprintf "%.1f" elapsed);
                      ("timeout_ms", Printf.sprintf "%.1f" tmo);
                      ("phase", "in-flight");
                    ]
                end
              end
            done
          done)
    in
    let wd =
      match cfg.timeout_ms with
      | Some tmo when cfg.live_watchdog -> Some (watchdog tmo)
      | _ -> None
    in
    let work i =
      supervise cfg ~label:(label i) (fun ~attempt:_ ->
          Atomic.set flagged.(i) false;
          Atomic.set starts.(i) (cfg.clock ());
          Fun.protect
            ~finally:(fun () -> Atomic.set starts.(i) 0L)
            (fun () -> f arr.(i)))
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set wd_stop true;
        Option.iter Domain.join wd)
      (fun () ->
        Pool.map_list pool work (List.init n (fun i -> i)))
  end

(* ------------------------------------------------------------------ *)
(* Stop requests                                                       *)
(* ------------------------------------------------------------------ *)

type stop = { flag : bool Atomic.t; signal : int Atomic.t }

let never_stop () = { flag = Atomic.make false; signal = Atomic.make 0 }

let install_stop_signals () =
  let s = never_stop () in
  let handle signum =
    (* async-signal context: only set atomics; the chunked driver
       notices at its next boundary and flushes the checkpoint there *)
    Atomic.set s.signal signum;
    Atomic.set s.flag true
  in
  List.iter
    (fun signum ->
      try Sys.set_signal signum (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  s

let request_stop s = Atomic.set s.flag true
let stop_requested s = Atomic.get s.flag

let stop_signal s =
  match Atomic.get s.signal with 0 -> None | n -> Some n

let signal_name n =
  if n = Sys.sigint then "sigint"
  else if n = Sys.sigterm then "sigterm"
  else if n = Sys.sighup then "sighup"
  else string_of_int n

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type session = {
  sup : config;
  checkpoint : string option;
  resume : bool;
  stop : stop;
}

let session ?sup:(c = config ()) ?checkpoint ?(resume = false) ?stop () =
  {
    sup = c;
    checkpoint;
    resume;
    stop = (match stop with Some s -> s | None -> never_stop ());
  }

let plain = session ()
