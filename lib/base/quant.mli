(** The shared 8-bit storage quantization (paper §3.1).

    One signed 8-bit code grid serves every digital-to-storage path of
    the design: bit-cell array writes ({!Promise_arch.Bitcell_array}),
    X-REG staging in the machine, and the host runtime's operand
    quantization ([Ml.Fixed_point]). All of them delegate to this
    module, so a change to the rounding rule cannot desynchronize the
    layers. *)

val bits : int
(** 8. *)

val scale : float
(** 128.0 — one LSB is [1 / scale]. *)

val quantize8 : float -> int
(** [quantize8 v] — nearest signed 8-bit code for normalized [v]
    ([Float.round (v * 128)]), clamped to [[-128, 127]]. *)

val dequantize8 : int -> float
(** [dequantize8 code] — [code / 128.], the ideal DAC. *)
