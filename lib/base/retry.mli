(** Bounded retry with exponential backoff and deterministic jitter.

    The backoff schedule is a {e pure function} of the policy: delay
    [k] (before attempt [k + 1], 1-based) is

    [min max_delay_ms (base_delay_ms * 2^(k-1)) * (1 + jitter * u_k)]

    where [u_k] in [[-1, 1)] is drawn from a splitmix64 stream seeded
    by [(seed, k)]. Jitter decorrelates concurrent retriers without
    sacrificing reproducibility: rerunning a campaign with the same
    seed replays the exact same waits, so an incident log from a
    failed run can be diffed against its rerun. *)

type policy = private {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_delay_ms : float;  (** backoff before the first retry (>= 0) *)
  max_delay_ms : float;  (** cap on the un-jittered delay *)
  jitter : float;  (** jitter fraction in [0, 1] *)
  seed : int;  (** jitter stream seed *)
}

val policy :
  ?max_attempts:int ->
  ?base_delay_ms:float ->
  ?max_delay_ms:float ->
  ?jitter:float ->
  seed:int ->
  unit ->
  (policy, Error.t) result
(** Validated constructor. Defaults: 3 attempts, 50 ms base, 2000 ms
    cap, 0.25 jitter. Errors ([Invalid_operand]) on a non-positive
    attempt count, negative delays, a cap below the base, or jitter
    outside [0, 1]. *)

val no_retry : seed:int -> policy
(** One attempt, no backoff: supervision without retries. *)

val backoff_ms : policy -> attempt:int -> float
(** [backoff_ms p ~attempt] — the wait after failed attempt [attempt]
    (1-based); only meaningful for [1 <= attempt < max_attempts].
    Deterministic and non-negative; at most
    [max_delay_ms * (1 + jitter)]. *)

val schedule : policy -> float list
(** All [max_attempts - 1] backoffs, in order. *)

val run :
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay_ms:float -> Error.t -> unit) ->
  policy ->
  (attempt:int -> ('a, Error.t) result) ->
  ('a, Error.t) result
(** [run p f] — call [f ~attempt:1], then on [Error] sleep the
    backoff and retry, up to [max_attempts] calls in total.
    [on_retry] fires before each backoff sleep (incident logging).
    The final [Error] is returned with [attempts]/[code] context and
    the code promoted to [Retry_exhausted] when more than one attempt
    was allowed. [sleep] defaults to {!Clock.sleep_ms}; tests inject
    a recorder. [f] must not raise — supervised wrappers catch. *)
