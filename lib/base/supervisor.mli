(** Supervised execution of independent work items.

    The harness layer PR 1 gave the simulated hardware, applied to the
    software around it: every unit of work in a long-running campaign
    runs under a monotonic-clock deadline, a bounded {!Retry} policy
    with deterministic backoff, and an {!Incident} trail — and a work
    item that exhausts its budget is {e quarantined} (reported as a
    typed [Error.t] in its result slot) instead of aborting its
    siblings.

    Two timeout mechanisms cooperate:
    - a {e live watchdog} domain scans the in-flight items of a
      {!map_result} every [watchdog_poll_ms] and logs a [Timeout]
      incident the moment an item is overdue (observability while the
      item is still wedged — an OCaml domain cannot be preempted, so a
      truly stuck item can only be reported, not killed, until the
      process is restarted and resumes from its checkpoint);
    - a {e post-hoc check} measures each completed attempt against the
      deadline and, when [enforce_timeout] is set, converts an overdue
      attempt into a typed [Timeout] failure that enters the retry
      loop and eventually quarantines.

    Determinism: with no [timeout_ms] (the default) supervision never
    alters a result, so the bit-identical guarantees of the parallel
    engine are untouched. Deadlines trade that for protection — they
    make results depend on wall-clock behavior, which is exactly what
    the operator asks for with [--timeout-ms]. *)

type config = private {
  timeout_ms : float option;  (** per-attempt deadline; [None] = off *)
  enforce_timeout : bool;
      (** overdue attempts become [Timeout] failures (default [true]
          when a deadline is set) *)
  retry : Retry.policy;
  incidents : Incident.t;
  clock : unit -> int64;  (** monotonic ns; injectable for tests *)
  sleep : float -> unit;  (** backoff sleep (ms); injectable *)
  watchdog_poll_ms : float;
  live_watchdog : bool;  (** spawn the scanning domain in map_result *)
}

val config :
  ?timeout_ms:float ->
  ?enforce_timeout:bool ->
  ?retry:Retry.policy ->
  ?incidents:Incident.t ->
  ?clock:(unit -> int64) ->
  ?sleep:(float -> unit) ->
  ?watchdog_poll_ms:float ->
  ?live_watchdog:bool ->
  unit ->
  config
(** Defaults: no deadline, no retries ([Retry.no_retry ~seed:0]), null
    incident sink, real monotonic clock and sleep, 50 ms watchdog
    poll, live watchdog on (it only runs when a deadline is set). *)

val supervise :
  config ->
  label:string ->
  (attempt:int -> ('a, Error.t) result) ->
  ('a, Error.t) result
(** One unit of work under the config's deadline/retry/incident
    policy. Exceptions raised by the work function are captured
    (message + backtrace in the error context), never propagated. On
    exhaustion the final error carries the item label and a
    [Quarantine] incident is logged. *)

val map_result :
  ?pool:Pool.t ->
  config ->
  label:(int -> string) ->
  ('a -> ('b, Error.t) result) ->
  'a list ->
  ('b, Error.t) result list
(** Supervised {!Pool.map_list}: every item runs under {!supervise},
    in input order, and a quarantined item occupies its result slot as
    [Error] while every sibling still completes. The live watchdog (if
    armed) monitors the whole map. *)

(** {2 Cooperative stop (SIGINT / SIGTERM)} *)

type stop
(** A stop request flag shared between signal handlers and the
    chunked drivers ({!Campaign}, [Report]): handlers only set an
    atomic — checkpoint flushing happens at the next chunk boundary
    in the driver, where it is safe. *)

val never_stop : unit -> stop
(** A flag nothing sets (the default for library callers). *)

val install_stop_signals : unit -> stop
(** Install [Signal_handle]s for SIGINT and SIGTERM that set the flag.
    Call once, from a CLI main, before starting supervised work. *)

val request_stop : stop -> unit
(** Set the flag programmatically (tests, embedding). *)

val stop_requested : stop -> bool

val stop_signal : stop -> int option
(** The signal number that set the flag, when a handler did. *)

val signal_name : int -> string
(** ["sigint"] / ["sigterm"] / ["sighup"] for the OCaml signal
    numbers, the raw number otherwise (incident-log readability). *)

(** {2 Sessions}

    What a long-running driver (campaign, report, bench) needs to run
    supervised: the per-item policy, where to checkpoint, whether to
    resume, and the stop flag to poll at chunk boundaries. *)

type session = private {
  sup : config;
  checkpoint : string option;  (** checkpoint path; [None] = no persistence *)
  resume : bool;  (** load the checkpoint before starting *)
  stop : stop;
}

val session :
  ?sup:config ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?stop:stop ->
  unit ->
  session

val plain : session
(** No deadline, no retries, no checkpoint, no stop: supervised
    drivers behave exactly like their unsupervised ancestors under
    this session. *)
