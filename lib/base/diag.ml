type severity = Info | Warning | Error

type span =
  | No_span
  | Line of int
  | Task of int
  | Block of string
  | Instr of { block : string; vreg : int }
  | Node of int

type t = { code : string; severity : severity; span : span; message : string }

let make ?(severity = Error) ?(span = No_span) ~code message =
  { code; severity; span; message }

let errorf ?span ~code fmt =
  Printf.ksprintf (fun message -> make ~severity:Error ?span ~code message) fmt

let warningf ?span ~code fmt =
  Printf.ksprintf
    (fun message -> make ~severity:Warning ?span ~code message)
    fmt

let code t = t.code
let severity t = t.severity
let span t = t.span
let message t = t.message
let with_span t span = { t with span }

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let span_to_string = function
  | No_span -> ""
  | Line n -> Printf.sprintf "line %d" n
  | Task i -> Printf.sprintf "task %d" i
  | Block l -> Printf.sprintf "block %S" l
  | Instr { block; vreg } -> Printf.sprintf "%%%d in block %S" vreg block
  | Node i -> Printf.sprintf "node %d" i

(* Compact rendering for embedding in legacy string errors: the code in
   brackets, then the message; the span is the caller's concern. *)
let render t = Printf.sprintf "[%s] %s" t.code t.message

let to_string t =
  match span_to_string t.span with
  | "" -> Printf.sprintf "%s[%s] %s" (severity_name t.severity) t.code t.message
  | s ->
      Printf.sprintf "%s[%s] %s: %s" (severity_name t.severity) t.code s
        t.message

let is_error t = t.severity = Error
let count_errors ds = List.length (List.filter is_error ds)
let count_warnings ds = List.length (List.filter (fun d -> d.severity = Warning) ds)
let first_error ds = List.find_opt is_error ds

let span_order = function
  | No_span -> (0, 0, "")
  | Line n -> (1, n, "")
  | Task i -> (2, i, "")
  | Node i -> (3, i, "")
  | Block l -> (4, 0, l)
  | Instr { block; vreg } -> (4, vreg, block)

(* Stable report order: position in the program first, then code, then
   descending severity so an error precedes a warning on the same spot. *)
let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (span_order a.span) (span_order b.span) in
      if c <> 0 then c
      else
        let c = compare a.code b.code in
        if c <> 0 then c
        else compare (severity_rank b.severity) (severity_rank a.severity))
    ds

(* ---- Fingerprints ----

   A fingerprint identifies "the same diagnostic" across lint runs for
   baseline suppression: the stable code, the span, and the message
   *skeleton* (digit runs collapsed to '#', so a bound that moves from
   [0, 159] to [0, 161] keeps its identity while a different code or a
   different span does not). Hashed with the stdlib Digest (MD5) and
   truncated to 16 hex characters — collision space is per-target
   diagnostic sets, tiny. *)

let skeleton msg =
  let buf = Buffer.create (String.length msg) in
  let in_digits = ref false in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          if not !in_digits then Buffer.add_char buf '#';
          in_digits := true
      | c ->
          in_digits := false;
          Buffer.add_char buf c)
    msg;
  Buffer.contents buf

let fingerprint ?(salt = "") t =
  let key =
    String.concat "\x00"
      [ salt; t.code; span_to_string t.span; skeleton t.message ]
  in
  String.sub (Digest.to_hex (Digest.string key)) 0 16

let to_error ~layer t =
  let span_ctx =
    match span_to_string t.span with "" -> [] | s -> [ ("span", s) ]
  in
  Error.make ~layer ~code:Error.Invalid_operand
    ~context:(("diag", t.code) :: span_ctx)
    t.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_json = function
  | No_span -> {|null|}
  | Line n -> Printf.sprintf {|{"kind":"line","line":%d}|} n
  | Task i -> Printf.sprintf {|{"kind":"task","index":%d}|} i
  | Block l -> Printf.sprintf {|{"kind":"block","label":"%s"}|} (json_escape l)
  | Instr { block; vreg } ->
      Printf.sprintf {|{"kind":"instr","block":"%s","vreg":%d}|}
        (json_escape block) vreg
  | Node i -> Printf.sprintf {|{"kind":"node","index":%d}|} i

let to_json t =
  Printf.sprintf {|{"code":"%s","severity":"%s","span":%s,"message":"%s"}|}
    (json_escape t.code)
    (severity_name t.severity)
    (span_to_json t.span) (json_escape t.message)

let list_to_json ds =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"
