type ty =
  | Scalar_int
  | Scalar_float
  | Vector of int
  | Matrix of int * int
  | Ptr
[@@deriving eq, show { with_path = false }]

type value = Vreg of int | Const_int of int | Const_float of float | Arg of string
[@@deriving eq, show { with_path = false }]

type vec_binop = Vadd | Vsub | Vmul [@@deriving eq, show { with_path = false }]

type vec_unop = Vabs | Vsquare | Vcompare
[@@deriving eq, show { with_path = false }]

type reduce_op = Rsum [@@deriving eq, show { with_path = false }]

type scalar_unop = Usigmoid | Urelu | Uneg | Uabs | Uthreshold of float
[@@deriving eq, show { with_path = false }]

type int_binop = Iadd | Isub | Imul [@@deriving eq, show { with_path = false }]

type icmp_pred = Lt | Le | Gt | Ge | Eq | Ne
[@@deriving eq, show { with_path = false }]

type label = string [@@deriving eq, show { with_path = false }]

type instr =
  | Getindex of { matrix : value; index : value }
  | Vec_binop of { op : vec_binop; lhs : value; rhs : value }
  | Vec_unop of { op : vec_unop; operand : value }
  | Reduce of { op : reduce_op; operand : value }
  | Scalar_unop of { op : scalar_unop; operand : value }
  | Int_binop of { op : int_binop; lhs : value; rhs : value }
  | Icmp of { pred : icmp_pred; lhs : value; rhs : value }
  | Getelementptr of { base : value; index : value }
  | Store of { src : value; ptr : value }
  | Load of { ptr : value }
  | Phi of { incoming : (label * value) list }
  | Call of { fn : string; args : value list }
[@@deriving eq, show { with_path = false }]

type terminator =
  | Br of label
  | Cond_br of { cond : value; if_true : label; if_false : label }
  | Ret of value option
[@@deriving show { with_path = false }]

type block = {
  label : label;
  first_index : int;
  instrs : instr array;
  terminator : terminator;
}

type func = { name : string; params : (string * ty) list; blocks : block list }

let pp_func ppf f =
  Format.fprintf ppf "@[<v>func %s(%a):@," f.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (n, ty) -> Format.fprintf ppf "%s : %a" n pp_ty ty))
    f.params;
  List.iter
    (fun b ->
      Format.fprintf ppf "%s:@," b.label;
      Array.iteri
        (fun i instr ->
          Format.fprintf ppf "  %%%d = %a@," (b.first_index + i) pp_instr instr)
        b.instrs;
      Format.fprintf ppf "  %a@," pp_terminator b.terminator)
    f.blocks;
  Format.fprintf ppf "@]"

let param_ty f name =
  List.find_opt (fun (n, _) -> String.equal n name) f.params
  |> Option.map snd

let find_block f label =
  List.find_opt (fun b -> String.equal b.label label) f.blocks

let def_of f vreg =
  List.find_map
    (fun b ->
      let offset = vreg - b.first_index in
      if offset >= 0 && offset < Array.length b.instrs then
        Some (b, b.instrs.(offset))
      else None)
    f.blocks

let instr_operands = function
  | Getindex { matrix; index } -> [ matrix; index ]
  | Vec_binop { lhs; rhs; _ } -> [ lhs; rhs ]
  | Vec_unop { operand; _ } -> [ operand ]
  | Reduce { operand; _ } -> [ operand ]
  | Scalar_unop { operand; _ } -> [ operand ]
  | Int_binop { lhs; rhs; _ } -> [ lhs; rhs ]
  | Icmp { lhs; rhs; _ } -> [ lhs; rhs ]
  | Getelementptr { base; index } -> [ base; index ]
  | Store { src; ptr } -> [ src; ptr ]
  | Load { ptr } -> [ ptr ]
  | Phi { incoming } -> List.map snd incoming
  | Call { args; _ } -> args

let ( let* ) = Result.bind

let verify f =
  let defined = Hashtbl.create 64 in
  let labels = Hashtbl.create 8 in
  let* () =
    List.fold_left
      (fun acc b ->
        let* () = acc in
        if Hashtbl.mem labels b.label then
          Error (Printf.sprintf "duplicate block label %S" b.label)
        else begin
          Hashtbl.add labels b.label ();
          Array.iteri
            (fun i _ ->
              let id = b.first_index + i in
              Hashtbl.replace defined id ())
            b.instrs;
          Ok ()
        end)
      (Ok ()) f.blocks
  in
  let check_value ctx = function
    | Vreg id when not (Hashtbl.mem defined id) ->
        Error (Printf.sprintf "%s: use of undefined register %%%d" ctx id)
    | Arg name when param_ty f name = None ->
        Error (Printf.sprintf "%s: unknown argument %S" ctx name)
    | Vreg _ | Arg _ | Const_int _ | Const_float _ -> Ok ()
  in
  let check_label ctx l =
    if Hashtbl.mem labels l then Ok ()
    else Error (Printf.sprintf "%s: unknown block label %S" ctx l)
  in
  List.fold_left
    (fun acc b ->
      let* () = acc in
      let ctx = Printf.sprintf "block %S" b.label in
      let* () =
        Array.fold_left
          (fun acc instr ->
            let* () = acc in
            let* () =
              List.fold_left
                (fun acc v ->
                  let* () = acc in
                  check_value ctx v)
                (Ok ())
                (instr_operands instr)
            in
            match instr with
            | Phi { incoming } ->
                List.fold_left
                  (fun acc (l, _) ->
                    let* () = acc in
                    check_label ctx l)
                  (Ok ()) incoming
            | _ -> Ok ())
          (Ok ()) b.instrs
      in
      match b.terminator with
      | Br l -> check_label ctx l
      | Cond_br { cond; if_true; if_false } ->
          let* () = check_value ctx cond in
          let* () = check_label ctx if_true in
          check_label ctx if_false
      | Ret (Some v) -> check_value ctx v
      | Ret None -> Ok ())
    (Ok ()) f.blocks

module Builder = struct
  type pending = {
    label : label;
    first_index : int;
    mutable rev_instrs : instr list;
    mutable terminator : terminator option;
  }

  type t = {
    name : string;
    params : (string * ty) list;
    mutable counter : int;
    mutable rev_blocks : pending list;
    mutable current : pending option;
  }

  let create ~name ~params =
    { name; params; counter = 0; rev_blocks = []; current = None }

  let flush t =
    match t.current with
    | None -> ()
    | Some p ->
        if p.terminator = None then
          (* Same diagnostic code as Promise_analysis.Ssa_check so the
             eager builder rejection and the whole-function validator
             speak one vocabulary. *)
          invalid_arg
            (Printf.sprintf "Ssa.Builder: [P-SSA-005] block %S has no terminator"
               p.label);
        t.rev_blocks <- p :: t.rev_blocks;
        t.current <- None

  let block t label =
    flush t;
    if
      List.exists (fun p -> String.equal p.label label) t.rev_blocks
    then invalid_arg (Printf.sprintf "Ssa.Builder: duplicate block %S" label);
    t.current <-
      Some { label; first_index = t.counter; rev_instrs = []; terminator = None }

  let instr t i =
    match t.current with
    | None -> invalid_arg "Ssa.Builder.instr: no open block"
    | Some p ->
        let id = t.counter in
        t.counter <- id + 1;
        p.rev_instrs <- i :: p.rev_instrs;
        Vreg id

  let terminate t term =
    match t.current with
    | None -> invalid_arg "Ssa.Builder.terminate: no open block"
    | Some p ->
        if p.terminator <> None then
          invalid_arg "Ssa.Builder.terminate: block already terminated";
        p.terminator <- Some term

  let finish t =
    flush t;
    let blocks =
      List.rev_map
        (fun p ->
          {
            label = p.label;
            first_index = p.first_index;
            instrs = Array.of_list (List.rev p.rev_instrs);
            terminator = Option.get p.terminator;
          })
        t.rev_blocks
    in
    let f = { name = t.name; params = t.params; blocks } in
    (match verify f with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Ssa.Builder.finish: " ^ msg));
    f
end
