(** A miniature language-neutral SSA IR (paper §4.3).

    The PROMISE pass operates on "a collection of SSA graphs, one per
    function"; this module is the OCaml stand-in for that LLVM layer.
    It carries exactly the constructs the Figure-7 pattern needs:
    typed array parameters, [getindex] (row of a matrix — a library
    call in the paper), element-wise vector operations, reductions
    (library calls), an optional scalar unary op, [getelementptr] +
    [store], integer induction arithmetic, and conditional branches. *)

type ty =
  | Scalar_int
  | Scalar_float
  | Vector of int  (** element count *)
  | Matrix of int * int  (** rows × cols *)
  | Ptr

val equal_ty : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit

(** An SSA value: virtual registers are defined once, by instruction
    index within the function. *)
type value = Vreg of int | Const_int of int | Const_float of float | Arg of string

val equal_value : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

type vec_binop = Vadd | Vsub | Vmul  (** element-wise, on vectors *)
type vec_unop = Vabs | Vsquare | Vcompare  (** element-wise *)

(** Reductions over a vector — the paper's Julia library calls. *)
type reduce_op = Rsum

(** Scalar unary operations (decision functions f()). *)
type scalar_unop = Usigmoid | Urelu | Uneg | Uabs | Uthreshold of float

type int_binop = Iadd | Isub | Imul
type icmp_pred = Lt | Le | Gt | Ge | Eq | Ne

val equal_vec_binop : vec_binop -> vec_binop -> bool
val equal_vec_unop : vec_unop -> vec_unop -> bool
val equal_reduce_op : reduce_op -> reduce_op -> bool
val equal_scalar_unop : scalar_unop -> scalar_unop -> bool
val equal_int_binop : int_binop -> int_binop -> bool
val equal_icmp_pred : icmp_pred -> icmp_pred -> bool
val pp_vec_binop : Format.formatter -> vec_binop -> unit
val pp_vec_unop : Format.formatter -> vec_unop -> unit
val pp_reduce_op : Format.formatter -> reduce_op -> unit
val pp_scalar_unop : Format.formatter -> scalar_unop -> unit
val pp_int_binop : Format.formatter -> int_binop -> unit
val pp_icmp_pred : Format.formatter -> icmp_pred -> unit

type label = string

type instr =
  | Getindex of { matrix : value; index : value }
      (** row [index] of [matrix] (Julia [getindex] on dimension 1) *)
  | Vec_binop of { op : vec_binop; lhs : value; rhs : value }
  | Vec_unop of { op : vec_unop; operand : value }
  | Reduce of { op : reduce_op; operand : value }
  | Scalar_unop of { op : scalar_unop; operand : value }
  | Int_binop of { op : int_binop; lhs : value; rhs : value }
  | Icmp of { pred : icmp_pred; lhs : value; rhs : value }
  | Getelementptr of { base : value; index : value }
  | Store of { src : value; ptr : value }
  | Load of { ptr : value }
  | Phi of { incoming : (label * value) list }
  | Call of { fn : string; args : value list }
      (** opaque library call (e.g. [argmin], [argmax], [majority_vote]
          applied to a computed output vector after the loop) *)

val equal_instr : instr -> instr -> bool
val pp_instr : Format.formatter -> instr -> unit

type terminator =
  | Br of label
  | Cond_br of { cond : value; if_true : label; if_false : label }
  | Ret of value option

val pp_terminator : Format.formatter -> terminator -> unit

(** A basic block: instructions are numbered globally within the
    function ([first_index] is the Vreg id of the first one). *)
type block = {
  label : label;
  first_index : int;
  instrs : instr array;
  terminator : terminator;
}

type func = {
  name : string;
  params : (string * ty) list;
  blocks : block list;  (** entry first *)
}

val pp_func : Format.formatter -> func -> unit

(** [param_ty f name] — declared type of parameter [name]. *)
val param_ty : func -> string -> ty option

(** [find_block f label]. *)
val find_block : func -> label -> block option

(** [def_block f vreg] — the block defining a virtual register, with the
    instruction. *)
val def_of : func -> int -> (block * instr) option

(** [instr_operands i] — the values an instruction reads (phi incoming
    values included, labels excluded). *)
val instr_operands : instr -> value list

(** [verify f] — structural checks: unique labels, every used Vreg is
    defined, branch targets exist, phi predecessors exist, registers
    defined once. The deeper dominance/phi/type validation lives in
    [Promise_analysis.Ssa_check]. *)
val verify : func -> (unit, string) result

(** {2 Builder} *)

module Builder : sig
  type t

  val create : name:string -> params:(string * ty) list -> t

  (** [block b label] — start (or switch back to) a block. Finishing
      the previous block without a terminator raises
      [Invalid_argument] tagged with diagnostic code [P-SSA-005] (the
      same code {!Promise_analysis.Ssa_check} reports). *)
  val block : t -> label -> unit

  (** [instr b i] — append; returns the new register as a value. *)
  val instr : t -> instr -> value

  val terminate : t -> terminator -> unit
  val finish : t -> func
end
