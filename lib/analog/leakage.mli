(** Capacitor droop: analog values stored on capacitors degrade over time
    (paper §3.2). The bit-line is worst: every bit-cell in a column leaks
    into it, up to 0.6 %/ns. Idle pipeline slots therefore cost accuracy,
    which is why PROMISE keeps the clock period [TP] tight. *)

(** Worst-case bit-line droop rate, fraction per ns (paper: 0.6 %/ns). *)
val bitline_rate_per_ns : float

(** Droop rate of the (smaller, better isolated) aSD holding capacitor. *)
val capacitor_rate_per_ns : float

(** [droop ~rate_per_ns ~ns v] — value [v] after [ns] nanoseconds of
    exponential droop toward 0: [v *. exp (-. rate *. ns)]. *)
val droop : rate_per_ns:float -> ns:float -> float -> float

(** [droop_factor ~rate_per_ns ~ns] — the multiplier alone, so a
    per-task-constant idle time pays the [exp] once;
    [droop ~rate ~ns v ≡ v *. droop_factor ~rate ~ns] bit-for-bit. *)
val droop_factor : rate_per_ns:float -> ns:float -> float

(** [bitline ~idle_ns v] — {!droop} at {!bitline_rate_per_ns}. *)
val bitline : idle_ns:float -> float -> float

(** [bitline_factor ~idle_ns] — {!droop_factor} at
    {!bitline_rate_per_ns}. *)
val bitline_factor : idle_ns:float -> float

(** [stage_hold ~idle_ns v] — {!droop} at {!capacitor_rate_per_ns}. *)
val stage_hold : idle_ns:float -> float -> float
