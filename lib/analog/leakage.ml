let bitline_rate_per_ns = 0.006
let capacitor_rate_per_ns = 0.0005

(* The droop multiplier alone, so per-task-constant idle times can pay
   the [exp] once instead of once per lane; [droop ~rate ~ns v] is
   exactly [v *. droop_factor ~rate ~ns], keeping the hoisted form
   bit-identical to the per-value one. *)
let droop_factor ~rate_per_ns ~ns =
  if ns < 0.0 then invalid_arg "Leakage.droop: negative time";
  exp (-.rate_per_ns *. ns)

let droop ~rate_per_ns ~ns v = v *. droop_factor ~rate_per_ns ~ns

let bitline ~idle_ns v = droop ~rate_per_ns:bitline_rate_per_ns ~ns:idle_ns v

let bitline_factor ~idle_ns =
  droop_factor ~rate_per_ns:bitline_rate_per_ns ~ns:idle_ns
let stage_hold ~idle_ns v =
  droop ~rate_per_ns:capacitor_rate_per_ns ~ns:idle_ns v
