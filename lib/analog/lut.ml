type t = { entries : float array }

let tabulate entries f =
  if entries < 2 then invalid_arg "Lut.of_function: need at least 2 entries";
  let step = 2.0 /. float_of_int (entries - 1) in
  { entries = Array.init entries (fun i -> f (-1.0 +. (step *. float_of_int i))) }

let of_function ?(entries = 256) f = tabulate entries f
let identity = of_function (fun x -> x)
let compressive ~alpha = of_function (fun x -> x -. (alpha *. (x ** 3.0)))

let with_offset ~offset t =
  { entries = Array.map (fun v -> v +. offset) t.entries }

(* The one interpolation rule of the model. [apply] and every
   pre-sampled fast path (the fused kernels inline this arithmetic over
   {!table}) must perform these exact operations in this exact order so
   their results are bit-identical. *)
let apply_raw entries v =
  let n = Array.length entries in
  let v = Float.min 1.0 (Float.max (-1.0) v) in
  let pos = (v +. 1.0) /. 2.0 *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  if i >= n - 1 then entries.(n - 1)
  else
    let frac = pos -. float_of_int i in
    ((1.0 -. frac) *. entries.(i)) +. (frac *. entries.(i + 1))

let apply t v = apply_raw t.entries v
let table t = Array.copy t.entries

let max_deviation t =
  let n = Array.length t.entries in
  let step = 2.0 /. float_of_int (n - 1) in
  let dev = ref 0.0 in
  Array.iteri
    (fun i v ->
      let x = -1.0 +. (step *. float_of_int i) in
      dev := Float.max !dev (Float.abs (v -. x)))
    t.entries;
  !dev

module Silicon = struct
  (* Per-block INL magnitudes in line with the <10% energy / <2% transfer
     deviation the paper reports against measured silicon [9]. *)
  let aread = compressive ~alpha:0.01
  let absolute = compressive ~alpha:0.015
  let square = compressive ~alpha:0.02
  let mult = compressive ~alpha:0.02
  let compare_ = with_offset ~offset:0.002 identity
end
