(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic model in the simulator draws from an explicit [t]
    so runs are reproducible bit-for-bit from a seed, independently of
    the global [Random] state. *)

type t

(** [create seed] — a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [split t] derives an independent generator (and advances [t]). *)
val split : t -> t

(** [split_n t n] — [n] independent generators, identical to calling
    [split t] [n] times in ascending order. Used to give each bank of
    a machine its own stream so parallel bank simulation draws the
    same noise samples as sequential simulation. *)
val split_n : t -> int -> t array

(** [copy t] duplicates the current state without advancing it. *)
val copy : t -> t

(** [bits64 t] — next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] — uniform in [\[0, bound)]. Raises on [bound <= 0]. *)
val int : t -> int -> int

(** [float t] — uniform in [\[0, 1)]. *)
val float : t -> float

(** [uniform t ~lo ~hi] — uniform in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [gaussian t] — standard normal via Box-Muller (cached pair). *)
val gaussian : t -> float

(** [gaussian_scaled t ~mu ~sigma] — N(mu, sigma²). *)
val gaussian_scaled : t -> mu:float -> sigma:float -> float

(** [gaussian_fill t dst] fills [dst] with standard normals, consuming
    the stream exactly as [Array.length dst] successive [gaussian]
    calls would (same values, same final cache state). Exists so hot
    loops can draw a whole lane vector without boxing a float per
    draw. *)
val gaussian_fill : t -> float array -> unit

(** A float64 bigarray vector — the batched kernels' noise plane. *)
type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [gaussian_fill_ba t dst ~len] fills [dst.{0..len-1}] with standard
    normals, consuming the stream exactly as [len] successive
    {!gaussian} calls (or any composition of {!gaussian_fill} calls
    totalling [len] draws) would — same values, same final cache
    state. The batch execution engine draws the noise for a whole
    batch of decisions through one call, into a bigarray plane that
    outlives the minor heap. Raises [Invalid_argument] when [len]
    exceeds [dst]'s length. *)
val gaussian_fill_ba : t -> ba -> len:int -> unit

(** [shuffle t arr] — in-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
