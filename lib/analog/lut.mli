(** Deterministic analog non-idealities as look-up tables (paper §5).

    The paper extracts each analog block's deterministic transfer-curve
    error from silicon measurements into LUTs and folds them into the
    behavioral models. We build the same structure from parametric
    integral-non-linearity (INL) curves: a LUT maps an ideal analog value
    in [[-1, 1]] to the value the block actually produces, with linear
    interpolation between entries. Deterministic errors are tolerable at
    the algorithm level because re-training absorbs them (§4.4); tests
    assert they stay small and reproducible. *)

type t

(** [identity] — the ideal transfer curve. *)
val identity : t

(** [of_function ?entries f] — tabulate [f] over [[-1, 1]].
    [entries] defaults to 256 (8-bit resolution). *)
val of_function : ?entries:int -> (float -> float) -> t

(** [compressive ~alpha] — odd-symmetric cubic compression
    [x -> x - alpha * x^3], the dominant INL shape of charge-domain
    multipliers; [alpha] around 0.02 matches the <2% deviation of the
    silicon-validated blocks. *)
val compressive : alpha:float -> t

(** [with_offset ~offset t] — adds a constant offset (e.g. comparator
    offset) after [t]. *)
val with_offset : offset:float -> t -> t

(** [apply t v] — look up [v] (clamped to [[-1, 1]]) with linear
    interpolation. *)
val apply : t -> float -> float

(** [table t] — a copy of the raw entry table, evenly spaced over
    [[-1, 1]], for callers that pre-sample or inline the interpolation
    ({!Promise_arch.Kernel}). [apply_raw (table t) v ≡ apply t v]. *)
val table : t -> float array

(** [apply_raw entries v] — the exact interpolation arithmetic of
    {!apply} over a raw entry table. This is the single definition of
    the lookup rule: any fast path that inlines it must reproduce these
    operations in this order to stay bit-identical. *)
val apply_raw : float array -> float -> float

(** [max_deviation t] — max |apply t v - v| over the table entries. *)
val max_deviation : t -> float

(** The default silicon-like transfer curves used by the bank model. *)
module Silicon : sig
  val aread : t
  val absolute : t
  val square : t
  val mult : t
  val compare_ : t
end
