(** Spatial random error of the analog read path (paper §4.4).

    The output of aREAD at swing [s] for a stored (normalized) value
    [w ∈ [-1, 1)] follows [N(w, (|w| · f(s))²)] where [f] is
    {!Swing.noise_factor}. Deterministic non-idealities live in {!Lut};
    this module models only the process-variation noise. *)

type t

(** [create ~rng ()] — a noise source drawing from [rng]. *)
val create : rng:Rng.t -> unit -> t

(** [disabled] — an ideal (noise-free) source, for functional
    validation runs (paper §5, "architecture-level validation"). *)
val disabled : t

val is_enabled : t -> bool

(** [rng t] — the underlying stream ([None] when disabled), for fast
    paths that pre-compute {!sigma} per stored code and then draw
    [Rng.gaussian_scaled rng ~mu ~sigma] themselves; with the same
    sigma values this is draw-for-draw identical to {!aread}. *)
val rng : t -> Rng.t option

(** [sigma ~swing ~w] — the aREAD standard deviation [|w| · f(swing)]. *)
val sigma : swing:int -> w:float -> float

(** [aread t ~swing w] — one noisy analog read sample of [w]. *)
val aread : t -> swing:int -> float -> float

(** [aread_vector t ~swing ws] — element-wise {!aread} (fresh noise per
    element, modeling independent per-column process variation). *)
val aread_vector : t -> swing:int -> float array -> float array

(** [aggregate_sigma ~swing ~n] — σ of the charge-shared mean of [n]
    worst-case (|w| = 1) reads: [f(swing) /. sqrt n] (paper Eq. 3). *)
val aggregate_sigma : swing:int -> n:int -> float
