type t = Disabled | Enabled of Rng.t

let create ~rng () = Enabled rng
let disabled = Disabled
let is_enabled = function Disabled -> false | Enabled _ -> true
let rng = function Disabled -> None | Enabled rng -> Some rng

let sigma ~swing ~w = Float.abs w *. Swing.noise_factor swing

let aread t ~swing w =
  match t with
  | Disabled -> w
  | Enabled rng -> Rng.gaussian_scaled rng ~mu:w ~sigma:(sigma ~swing ~w)

let aread_vector t ~swing ws = Array.map (aread t ~swing) ws

let aggregate_sigma ~swing ~n =
  if n <= 0 then invalid_arg "Noise.aggregate_sigma: n must be positive";
  Swing.noise_factor swing /. sqrt (float_of_int n)
