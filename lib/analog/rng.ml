type t = { mutable state : int64; mutable cached_gaussian : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; cached_gaussian = None }

let next_seed state = Int64.add state golden_gamma

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- next_seed t.state;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed; cached_gaussian = None }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  (* ascending loop, not Array.init: each split advances [t], and
     Array.init's evaluation order is unspecified *)
  let streams = Array.make n t in
  for i = 0 to n - 1 do
    streams.(i) <- split t
  done;
  streams

let copy t = { state = t.state; cached_gaussian = t.cached_gaussian }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the conversion to a 63-bit OCaml int stays positive *)
  let mask = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  mask mod bound

let float t =
  (* 53 uniform mantissa bits. *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let gaussian t =
  match t.cached_gaussian with
  | Some g ->
      t.cached_gaussian <- None;
      g
  | None ->
      let rec draw () =
        let u = float t in
        if u <= 1e-300 then draw () else u
      in
      let u1 = draw () and u2 = float t in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.cached_gaussian <- Some (r *. sin theta);
      r *. cos theta

let gaussian_scaled t ~mu ~sigma = mu +. (sigma *. gaussian t)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
