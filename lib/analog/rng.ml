(* Splitmix64 streams. The representation is chosen for the simulator's
   hot loops (one gaussian per lane per iteration), not for elegance:

   - [state] lives in a 1-element Int64 Bigarray: loads and stores are
     unboxed with no write barrier. A [mutable state : int64] record
     field would allocate a boxed Int64 (plus caml_modify) on every
     draw — without flambda that dominates the draw cost.
   - the Box-Muller cache is a 1-element float array plus a flag: float
     array stores are unboxed, while a [float option] field would
     allocate a [Some] box every second draw.

   The value sequences are identical to the straightforward
   implementation — representation only, never arithmetic. *)

type t = {
  state : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  cached : float array;  (* length 1: the spare Box-Muller gaussian *)
  mutable has_cached : bool;
}

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let golden_gamma = 0x9E3779B97F4A7C15L

let of_state s =
  let state = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 1 in
  Bigarray.Array1.unsafe_set state 0 s;
  { state; cached = [| 0.0 |]; has_cached = false }

let create seed = of_state (Int64.of_int seed)

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  let s = Int64.add (Bigarray.Array1.unsafe_get t.state 0) golden_gamma in
  Bigarray.Array1.unsafe_set t.state 0 s;
  mix s

let split t = of_state (bits64 t)

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  (* ascending loop, not Array.init: each split advances [t], and
     Array.init's evaluation order is unspecified *)
  let streams = Array.make n t in
  for i = 0 to n - 1 do
    streams.(i) <- split t
  done;
  streams

let copy t =
  let c = of_state (Bigarray.Array1.unsafe_get t.state 0) in
  c.cached.(0) <- t.cached.(0);
  c.has_cached <- t.has_cached;
  c

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the conversion to a 63-bit OCaml int stays positive *)
  let mask = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  mask mod bound

let float t =
  (* 53 uniform mantissa bits. The state advance and splitmix64
     finalizer are inlined by hand (same operations, same values):
     keeping the whole Int64 chain in one function body is what lets
     the compiler leave it unboxed. *)
  let s = Int64.add (Bigarray.Array1.unsafe_get t.state 0) golden_gamma in
  Bigarray.Array1.unsafe_set t.state 0 s;
  let z =
    Int64.mul
      (Int64.logxor s (Int64.shift_right_logical s 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11)
  *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let gaussian t =
  if t.has_cached then begin
    t.has_cached <- false;
    t.cached.(0)
  end
  else begin
    let rec draw () =
      let u = float t in
      if u <= 1e-300 then draw () else u
    in
    let u1 = draw () in
    let u2 = float t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.cached.(0) <- r *. sin theta;
    t.has_cached <- true;
    r *. cos theta
  end

let gaussian_scaled t ~mu ~sigma = mu +. (sigma *. gaussian t)

(* Rejection fallback for [gaussian_fill]'s first uniform; reached with
   probability ~1e-300 per pair, so it may allocate freely. *)
let rec reject_small t =
  let u = float t in
  if u > 1e-300 then u else reject_small t

(* The pair loop behind [gaussian_fill]. A module-level tail-recursive
   function on an int index, rather than a [while] over a [ref], so one
   call allocates nothing at all: the counter stays in a register and
   the uniform draws inline the [float] chain (same operations, same
   values) instead of paying a boxed return per draw. *)
let rec fill_pairs t dst n i =
  if i < n then begin
    let s = Int64.add (Bigarray.Array1.unsafe_get t.state 0) golden_gamma in
    Bigarray.Array1.unsafe_set t.state 0 s;
    let z =
      Int64.mul
        (Int64.logxor s (Int64.shift_right_logical s 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let u =
      Int64.to_float (Int64.shift_right_logical z 11)
      *. (1.0 /. 9007199254740992.0)
    in
    let u1 = if u > 1e-300 then u else reject_small t in
    let s = Int64.add (Bigarray.Array1.unsafe_get t.state 0) golden_gamma in
    Bigarray.Array1.unsafe_set t.state 0 s;
    let z =
      Int64.mul
        (Int64.logxor s (Int64.shift_right_logical s 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let u2 =
      Int64.to_float (Int64.shift_right_logical z 11)
      *. (1.0 /. 9007199254740992.0)
    in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    Array.unsafe_set dst i (r *. cos theta);
    if i + 1 < n then begin
      Array.unsafe_set dst (i + 1) (r *. sin theta);
      fill_pairs t dst n (i + 2)
    end
    else begin
      t.cached.(0) <- r *. sin theta;
      t.has_cached <- true
    end
  end

let gaussian_fill t dst =
  (* Equivalent to [for i = 0 to n-1 do dst.(i) <- gaussian t done] —
     same draws, same final cache state — with zero allocations. *)
  let n = Array.length dst in
  if n > 0 then
    if t.has_cached then begin
      t.has_cached <- false;
      Array.unsafe_set dst 0 t.cached.(0);
      fill_pairs t dst n 1
    end
    else fill_pairs t dst n 0

(* [fill_pairs] on a float64 bigarray — the batch-noise plane of the
   batched kernels lives in a bigarray so it can be shared and sliced
   without the float-array bounds of the minor heap. Same draws, same
   pair structure, same cache behavior as [fill_pairs]. *)
let rec fill_pairs_ba t (dst : ba) n i =
  if i < n then begin
    let s = Int64.add (Bigarray.Array1.unsafe_get t.state 0) golden_gamma in
    Bigarray.Array1.unsafe_set t.state 0 s;
    let z =
      Int64.mul
        (Int64.logxor s (Int64.shift_right_logical s 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let u =
      Int64.to_float (Int64.shift_right_logical z 11)
      *. (1.0 /. 9007199254740992.0)
    in
    let u1 = if u > 1e-300 then u else reject_small t in
    let s = Int64.add (Bigarray.Array1.unsafe_get t.state 0) golden_gamma in
    Bigarray.Array1.unsafe_set t.state 0 s;
    let z =
      Int64.mul
        (Int64.logxor s (Int64.shift_right_logical s 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let u2 =
      Int64.to_float (Int64.shift_right_logical z 11)
      *. (1.0 /. 9007199254740992.0)
    in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    Bigarray.Array1.unsafe_set dst i (r *. cos theta);
    if i + 1 < n then begin
      Bigarray.Array1.unsafe_set dst (i + 1) (r *. sin theta);
      fill_pairs_ba t dst n (i + 2)
    end
    else begin
      t.cached.(0) <- r *. sin theta;
      t.has_cached <- true
    end
  end

let gaussian_fill_ba t dst ~len =
  if len < 0 || len > Bigarray.Array1.dim dst then
    invalid_arg "Rng.gaussian_fill_ba: len out of range";
  if len > 0 then
    if t.has_cached then begin
      t.has_cached <- false;
      Bigarray.Array1.unsafe_set dst 0 t.cached.(0);
      fill_pairs_ba t dst len 1
    end
    else fill_pairs_ba t dst len 0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
