module At = Promise_ir.Abstract_task
module Graph = Promise_ir.Graph
module Layout = Promise_arch.Layout

let bytes_per_cycle = 16
let energy_pj_per_byte = 1.0

let transfer_cycles ~bytes =
  if bytes < 0 then invalid_arg "Dma.transfer_cycles: negative size";
  (bytes + bytes_per_cycle - 1) / bytes_per_cycle

let transfer_energy_pj ~bytes = float_of_int bytes *. energy_pj_per_byte

(* X loads only for tasks whose X comes from outside the fabric
   (dataflow edges stay on the cross-bank rail, already priced). *)
let x_bytes_of_task g id (at : At.t) =
  let fed_by_edge =
    List.exists
      (fun (_, port) -> Graph.equal_port port Graph.X_input)
      (Graph.predecessors g id)
  in
  if (not (At.uses_x at)) || fed_by_edge then 0
  else
    match
      Layout.plan ~vector_len:at.At.vector_len ~rows:at.At.loop_iterations ()
    with
    | Error _ -> 0
    | Ok plan ->
        if At.equal_digital_op at.At.digital_op At.Do_mean then
          (* streamed element-wise reduction (mean_product): a fresh X
             window per row *)
          at.At.vector_len * at.At.loop_iterations
        else
          (* broadcast X, reloaded once per row chunk *)
          at.At.vector_len * max plan.Layout.tasks 1

let x_bytes_per_decision g =
  List.fold_left
    (fun acc (id, at) -> acc + x_bytes_of_task g id at)
    0 (Graph.tasks g)

let weight_bytes g =
  List.fold_left
    (fun acc (_, at) -> acc + (at.At.vector_len * at.At.loop_iterations))
    0 (Graph.tasks g)

let decision_overhead g =
  let bytes = x_bytes_per_decision g in
  (transfer_cycles ~bytes, transfer_energy_pj ~bytes)
