type t = {
  op_param : Op_param.t;
  rpt_num : int;
  multi_bank : int;
  class1 : Opcode.class1;
  class2 : Opcode.class2;
  class3 : Opcode.class3;
  class4 : Opcode.class4;
}
[@@deriving eq, show { with_path = false }]

let iterations t = t.rpt_num + 1
let banks t = 1 lsl t.multi_bank

let nop =
  {
    op_param = Op_param.default;
    rpt_num = 0;
    multi_bank = 0;
    class1 = Opcode.C1_none;
    class2 = { Opcode.asd = Opcode.Asd_none; avd = false };
    class3 = Opcode.C3_none;
    class4 = Opcode.C4_accumulate;
  }

let ( let* ) = Result.bind

module Diag = Promise_core.Diag

let check name v lo hi =
  if v < lo || v > hi then
    Error
      (Diag.errorf ~code:"P-TSK-002" "%s = %d out of range [%d, %d]" name v lo
         hi)
  else Ok ()

let composition_error msg = Error (Diag.make ~code:"P-TSK-003" msg)

let composition_ok class1 class2 class3 class4 =
  let open Opcode in
  let analog1 = class1_is_analog class1 in
  let asd_active = not (equal_asd class2.asd Asd_none) in
  let digitizes = equal_class3 class3 C3_adc in
  if asd_active && not analog1 then
    composition_error "Class-2 aSD operation requires an analog Class-1 producer"
  else if class2.avd && not analog1 then
    composition_error "aVD aggregation requires an analog Class-1 producer"
  else if asd_reads_x class2.asd && class1_reads_x class1 then
    composition_error "Class-2 multiply cannot follow a fused Class-1 add/subtract"
  else if class2.avd && not digitizes then
    composition_error
      "aVD aggregation requires Class-3 ADC (noise must not accumulate)"
  else if digitizes && not analog1 then
    composition_error "Class-3 ADC requires an analog Class-1 producer"
  else if
    (equal_class1 class1 C1_read || equal_class1 class1 C1_write)
    && (asd_active || class2.avd || digitizes)
  then composition_error "digital read/write admits no analog Class-2/3 stage"
  else if
    (not digitizes)
    && not (equal_class4 class4 C4_accumulate)
  then
    (* Without a fresh ADC sample the TH stage has no new operand; only the
       pass-through accumulate (idle) composition is meaningful. *)
    composition_error "a non-trivial Class-4 operation requires Class-3 ADC"
  else Ok ()

let validate t =
  let* _ = Op_param.validate t.op_param in
  let* () = check "RPT_NUM" t.rpt_num 0 127 in
  let* () = check "MULTI_BANK" t.multi_bank 0 3 in
  let* () = composition_ok t.class1 t.class2 t.class3 t.class4 in
  Ok t

let make ?(op_param = Op_param.default) ?(rpt_num = 0) ?(multi_bank = 0)
    ~class1 ~class2 ~class3 ~class4 () =
  let t = { op_param; rpt_num; multi_bank; class1; class2; class3; class4 } in
  match validate t with
  | Ok t -> t
  | Error d -> invalid_arg ("Task.make: " ^ Diag.render d)

let uses_adc t = Opcode.equal_class3 t.class3 Opcode.C3_adc

let legal_compositions () =
  let open Opcode in
  List.concat_map
    (fun class1 ->
      List.concat_map
        (fun class2 ->
          List.concat_map
            (fun class3 ->
              List.filter_map
                (fun class4 ->
                  match composition_ok class1 class2 class3 class4 with
                  | Ok () -> Some (class1, class2, class3, class4)
                  | Error _ -> None)
                all_class4)
            all_class3)
        all_class2)
    all_class1
