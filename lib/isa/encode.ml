let task_bits = 48
let task_bytes = 6

module Diag = Promise_core.Diag

let to_int (t : Task.t) =
  match Task.validate t with
  | Error d -> invalid_arg ("Encode.to_int: " ^ Diag.render d)
  | Ok t ->
      (Op_param.to_bits t.op_param lsl 20)
      lor (t.rpt_num lsl 13)
      lor (t.multi_bank lsl 11)
      lor (Opcode.class1_to_code t.class1 lsl 8)
      lor (Opcode.class2_to_code t.class2 lsl 4)
      lor (Opcode.class3_to_code t.class3 lsl 3)
      lor Opcode.class4_to_code t.class4

let ( let* ) = Result.bind

let decode_opcode name of_code code =
  match of_code code with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "reserved %s opcode %#x" name code)

let of_int bits =
  let field off width = (bits lsr off) land ((1 lsl width) - 1) in
  let* class1 = decode_opcode "Class-1" Opcode.class1_of_code (field 8 3) in
  let* class2 = decode_opcode "Class-2" Opcode.class2_of_code (field 4 4) in
  let* class3 = decode_opcode "Class-3" Opcode.class3_of_code (field 3 1) in
  let* class4 = decode_opcode "Class-4" Opcode.class4_of_code (field 0 3) in
  let t =
    {
      Task.op_param = Op_param.of_bits (field 20 28);
      rpt_num = field 13 7;
      multi_bank = field 11 2;
      class1;
      class2;
      class3;
      class4;
    }
  in
  Result.map_error Diag.render (Task.validate t)

let to_bytes t =
  let bits = to_int t in
  let b = Bytes.create task_bytes in
  for i = 0 to task_bytes - 1 do
    let shift = 8 * (task_bytes - 1 - i) in
    Bytes.set_uint8 b i ((bits lsr shift) land 0xff)
  done;
  b

let of_bytes b ~pos =
  if pos < 0 || pos + task_bytes > Bytes.length b then
    Error (Printf.sprintf "of_bytes: position %d out of bounds" pos)
  else
    let bits = ref 0 in
    for i = 0 to task_bytes - 1 do
      bits := (!bits lsl 8) lor Bytes.get_uint8 b (pos + i)
    done;
    of_int !bits

let program_to_bytes tasks =
  let b = Bytes.create (task_bytes * List.length tasks) in
  List.iteri (fun i t -> Bytes.blit (to_bytes t) 0 b (i * task_bytes) task_bytes) tasks;
  b

let program_of_bytes b =
  let len = Bytes.length b in
  if len mod task_bytes <> 0 then
    Error
      (Printf.sprintf "binary program length %d is not a multiple of %d" len
         task_bytes)
  else
    let rec loop pos acc =
      if pos >= len then Ok (List.rev acc)
      else
        match of_bytes b ~pos with
        | Ok t -> loop (pos + task_bytes) (t :: acc)
        | Error msg ->
            Error (Printf.sprintf "task %d: %s" (pos / task_bytes) msg)
    in
    loop 0 []

let hex_of_task t = Printf.sprintf "%012x" (to_int t)

let task_of_hex s =
  match int_of_string_opt ("0x" ^ String.trim s) with
  | None -> Error (Printf.sprintf "invalid hex task %S" s)
  | Some bits ->
      if bits < 0 || bits >= 1 lsl task_bits then
        Error (Printf.sprintf "hex task %S exceeds 48 bits" s)
      else of_int bits
