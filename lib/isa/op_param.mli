(** The 28-bit OP_PARAM field of a Task (paper Fig. 5(b)).

    Bit layout (MSB first):
    {v
      [27:25] SWING      ΔV_BL swing code, 000 = 5 mV/LSB .. 111 = 30 mV/LSB
      [24:23] ACC_NUM    number of operands accumulated by Class-4 accumulate
      [22:14] W_ADDR     bit-cell array (word-row) address of W for Class-1
      [13:11] X_ADDR1    X source address for the fused Class-1 add/subtract
      [10:8]  X_ADDR2    X-REG address of the Class-2 multiply operand
      [7:6]   X_PRD      X addresses circulate from 0 to X_PRD - 1
      [5:4]   DES        Class-4 output destination
      [3:0]   THRES_VAL  reference value for the Class-4 threshold op
    v} *)

type t = {
  swing : int;  (** 0..7 *)
  acc_num : int;  (** 0..3; accumulate pops [acc_num + 1] operands *)
  w_addr : int;  (** 0..511 word-row address *)
  x_addr1 : int;  (** 0..7 *)
  x_addr2 : int;  (** 0..7 *)
  x_prd : int;  (** 0..3; period of X address circulation is [x_prd + 1] *)
  des : Opcode.destination;
  thres_val : int;  (** 0..15 *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Default parameters: maximum swing (111), everything else zero,
    destination the output buffer. *)
val default : t

val swing_min : int
val swing_max : int

(** [validate t] is [Ok t] when every field is within its bit-field range,
    and [Error d] (diagnostic code [P-TSK-001]) otherwise. *)
val validate : t -> (t, Promise_core.Diag.t) result

(** [to_bits t] packs [t] into the low 28 bits of an int.
    Raises [Invalid_argument] if [validate] fails. *)
val to_bits : t -> int

(** [of_bits bits] unpacks the low 28 bits. *)
val of_bits : int -> t

val bit_width : int
(** 28. *)

(** [x_addr_at t ~base ~iteration] is the circulating X address for a given
    Task [iteration]: [(base + iteration) mod (x_prd + 1)] (paper §3.3,
    "X_ADDR1 & 2 circulate from 0 to X_PRD - 1"). *)
val x_addr_at : t -> base:int -> iteration:int -> int
