(** Textual assembly for PROMISE programs.

    One Task per line. A line is the keyword [task] followed by
    [key=value] fields in any order; unspecified fields take their
    defaults (maximum swing, zero addresses, single bank, one iteration).
    Blank lines and [#]/[;] comments are ignored.

    {v
    # template matching, L1, 127 candidates over 4 banks (paper §3.4)
    task c1=aSUBT c2=absolute.avd c3=ADC c4=min rpt=126 mb=2 swing=7 \
         w=0 x1=0 x2=0 xprd=0 des=out thres=0
    v}

    Field keys: [c1] [c2] [c3] [c4] [rpt] [mb] [swing] [acc] [w] [x1] [x2]
    [xprd] [des] [thres]. [c2] is an aSD mnemonic, optionally suffixed with
    [.avd] to enable aggregation. A trailing backslash continues a line. *)

(** [print_task t] renders one task as a single assembly line. *)
val print_task : Task.t -> string

(** [print_program tasks] renders a whole program, one line per task. *)
val print_program : Task.t list -> string

(** [parse_task line] parses a single [task ...] line. Syntax errors
    carry code [P-ASM-001]; task-legality errors carry the [P-TSK-*]
    code assigned by {!Task.validate}. *)
val parse_task : string -> (Task.t, Promise_core.Diag.t) result

(** [parse_program_located src] parses a whole source file, pairing
    each task with the 1-based source line it started on (for lint
    spans). Errors carry a [Line] span. *)
val parse_program_located :
  string -> ((int * Task.t) list, Promise_core.Diag.t) result

(** [parse_program src] — like {!parse_program_located} with the
    legacy string-error interface; errors render as
    ["line N: [CODE] message"]. *)
val parse_program : string -> (Task.t list, string) result
