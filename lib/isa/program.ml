type t = { name : string; tasks : Task.t list }
[@@deriving eq, show { with_path = false }]

let make ~name tasks =
  List.iteri
    (fun i task ->
      match Task.validate task with
      | Ok _ -> ()
      | Error d ->
          invalid_arg
            (Printf.sprintf "Program.make: task %d: %s" i
               (Promise_core.Diag.render d)))
    tasks;
  { name; tasks }

let length t = List.length t.tasks

let total_iterations t =
  List.fold_left (fun acc task -> acc + Task.iterations task) 0 t.tasks

let max_banks t =
  List.fold_left (fun acc task -> max acc (Task.banks task)) 1 t.tasks

let swings t =
  t.tasks
  |> List.map (fun task -> task.Task.op_param.Op_param.swing)
  |> List.sort_uniq compare

let with_swings t ss =
  if List.length ss <> List.length t.tasks then
    invalid_arg "Program.with_swings: length mismatch";
  let tasks =
    List.map2
      (fun task swing ->
        { task with Task.op_param = { task.Task.op_param with Op_param.swing } })
      t.tasks ss
  in
  make ~name:t.name tasks

let to_asm t = Asm.print_program t.tasks

let of_asm ~name src =
  Result.map (fun tasks -> { name; tasks }) (Asm.parse_program src)

let to_binary t = Encode.program_to_bytes t.tasks

let of_binary ~name b =
  Result.map (fun tasks -> { name; tasks }) (Encode.program_of_bytes b)
