(** A PROMISE Task — the wide-word macro instruction (paper Fig. 5(a)).

    A Task bundles one operation for each of the four pipelined stages
    (Class-1 .. Class-4) together with the operating parameters
    ([OP_PARAM]), the loop-control field [RPT_NUM] and the multi-bank
    control field [MULTI_BANK]. Unlike a VLIW word, the four operations
    execute {e sequentially} through the analog pipeline. *)

type t = {
  op_param : Op_param.t;
  rpt_num : int;  (** 0..127 — the Task body executes [rpt_num + 1] times *)
  multi_bank : int;  (** 0..3 — the Task runs on [2 ** multi_bank] banks *)
  class1 : Opcode.class1;
  class2 : Opcode.class2;
  class3 : Opcode.class3;
  class4 : Opcode.class4;
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Number of times the Task body executes ([rpt_num + 1]). *)
val iterations : t -> int

(** Number of banks the Task is distributed over ([2 ** multi_bank]). *)
val banks : t -> int

(** A no-op Task skeleton: all Classes none-like, default OP_PARAM.
    Class-4 defaults to [C4_accumulate] with destination [Des_output_buffer]. *)
val nop : t

(** [make ?op_param ?rpt_num ?multi_bank ~class1 ~class2 ~class3 ~class4 ()]
    builds and {!validate}s a task. Raises [Invalid_argument] on an illegal
    composition. *)
val make :
  ?op_param:Op_param.t ->
  ?rpt_num:int ->
  ?multi_bank:int ->
  class1:Opcode.class1 ->
  class2:Opcode.class2 ->
  class3:Opcode.class3 ->
  class4:Opcode.class4 ->
  unit ->
  t

(** Static validation of the constraints of paper §3.2/§3.3:
    - field ranges (including [OP_PARAM]);
    - an analog Class-2 operation requires an analog Class-1 producer
      (aREAD / aSUBT / aADD);
    - a Class-2 multiply cannot follow a fused Class-1 add/subtract
      (the fused value already consumed the analog operand path);
    - aggregation ([avd = true]) or any aSD op requires Class-3 ADC so the
      result can leave the analog domain (noise must not accumulate,
      §3.1);
    - Class-4 [threshold] uses [THRES_VAL]; [accumulate] uses [ACC_NUM];
    - digital [read]/[write] Class-1 ops admit no analog Class-2/3 stage.

    Errors carry stable diagnostic codes: [P-TSK-001] for OP_PARAM
    field ranges, [P-TSK-002] for [RPT_NUM]/[MULTI_BANK] ranges, and
    [P-TSK-003] for illegal class compositions. *)
val validate : t -> (t, Promise_core.Diag.t) result

(** [uses_adc t] — the Task digitizes its aggregate each iteration. *)
val uses_adc : t -> bool

(** All distinct (class1, class2, class3, class4) compositions accepted by
    {!validate}. The paper notes there are "more than 1000 compositions";
    this enumerates them for tests. *)
val legal_compositions :
  unit -> (Opcode.class1 * Opcode.class2 * Opcode.class3 * Opcode.class4) list
