let print_task (t : Task.t) =
  let p = t.op_param in
  let class2 =
    Opcode.asd_name t.class2.asd ^ if t.class2.avd then ".avd" else ""
  in
  Printf.sprintf
    "task c1=%s c2=%s c3=%s c4=%s rpt=%d mb=%d swing=%d acc=%d w=%d x1=%d \
     x2=%d xprd=%d des=%s thres=%d"
    (Opcode.class1_name t.class1)
    class2
    (Opcode.class3_name t.class3)
    (Opcode.class4_name t.class4)
    t.rpt_num t.multi_bank p.swing p.acc_num p.w_addr p.x_addr1 p.x_addr2
    p.x_prd
    (Opcode.destination_name p.des)
    p.thres_val

let print_program tasks = String.concat "\n" (List.map print_task tasks) ^ "\n"

let ( let* ) = Result.bind

let parse_int key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %s: invalid integer %S" key v)

let parse_class2 v =
  let asd_str, avd =
    match String.index_opt v '.' with
    | Some i ->
        let suffix = String.sub v (i + 1) (String.length v - i - 1) in
        (String.sub v 0 i, String.equal suffix "avd")
    | None -> (v, false)
  in
  match Opcode.asd_of_name asd_str with
  | Some asd -> Ok { Opcode.asd; avd }
  | None -> Error (Printf.sprintf "field c2: unknown aSD op %S" v)

let parse_named name of_name v =
  match of_name v with
  | Some op -> Ok op
  | None -> Error (Printf.sprintf "field %s: unknown mnemonic %S" name v)

let split_fields line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> not (String.equal s ""))

module Diag = Promise_core.Diag

(* Syntax-only parse: field splitting, mnemonic lookup, integers. Task
   legality (ranges, class composition) is Task.validate's job. *)
let parse_fields line =
  match split_fields line with
  | [] -> Error "empty task line"
  | keyword :: fields when String.equal keyword "task" ->
      let parse_field acc field =
        let* t = acc in
        let* key, value =
          match String.index_opt field '=' with
          | Some i ->
              Ok
                ( String.sub field 0 i,
                  String.sub field (i + 1) (String.length field - i - 1) )
          | None -> Error (Printf.sprintf "malformed field %S" field)
        in
        let set_param f =
          let* v = f in
          Ok { t with Task.op_param = v }
        in
        let p = t.Task.op_param in
        match key with
        | "c1" ->
            let* c = parse_named "c1" Opcode.class1_of_name value in
            Ok { t with Task.class1 = c }
        | "c2" ->
            let* c = parse_class2 value in
            Ok { t with Task.class2 = c }
        | "c3" ->
            let* c = parse_named "c3" Opcode.class3_of_name value in
            Ok { t with Task.class3 = c }
        | "c4" ->
            let* c = parse_named "c4" Opcode.class4_of_name value in
            Ok { t with Task.class4 = c }
        | "rpt" ->
            let* n = parse_int key value in
            Ok { t with Task.rpt_num = n }
        | "mb" ->
            let* n = parse_int key value in
            Ok { t with Task.multi_bank = n }
        | "swing" ->
            set_param
              (let* n = parse_int key value in
               Ok { p with Op_param.swing = n })
        | "acc" ->
            set_param
              (let* n = parse_int key value in
               Ok { p with Op_param.acc_num = n })
        | "w" ->
            set_param
              (let* n = parse_int key value in
               Ok { p with Op_param.w_addr = n })
        | "x1" ->
            set_param
              (let* n = parse_int key value in
               Ok { p with Op_param.x_addr1 = n })
        | "x2" ->
            set_param
              (let* n = parse_int key value in
               Ok { p with Op_param.x_addr2 = n })
        | "xprd" ->
            set_param
              (let* n = parse_int key value in
               Ok { p with Op_param.x_prd = n })
        | "des" ->
            set_param
              (let* d = parse_named "des" Opcode.destination_of_name value in
               Ok { p with Op_param.des = d })
        | "thres" ->
            set_param
              (let* n = parse_int key value in
               Ok { p with Op_param.thres_val = n })
        | _ -> Error (Printf.sprintf "unknown field %S" key)
      in
      List.fold_left parse_field (Ok Task.nop) fields
  | keyword :: _ -> Error (Printf.sprintf "expected 'task', got %S" keyword)

let parse_task line =
  match parse_fields line with
  | Error msg -> Error (Diag.make ~code:"P-ASM-001" msg)
  | Ok t -> Task.validate t

let strip_comment line =
  let cut i = String.sub line 0 i in
  match (String.index_opt line '#', String.index_opt line ';') with
  | Some i, Some j -> cut (min i j)
  | Some i, None | None, Some i -> cut i
  | None, None -> line

(* Join backslash-continued lines, preserving the line number of the first
   physical line of each logical line for error reporting. *)
let logical_lines src =
  let physical = String.split_on_char '\n' src in
  let rec join lineno acc pending = function
    | [] -> (
        match pending with
        | Some (n, s) -> List.rev ((n, s) :: acc)
        | None -> List.rev acc)
    | line :: rest ->
        let line = strip_comment line in
        let trimmed = String.trim line in
        let continues =
          String.length trimmed > 0
          && trimmed.[String.length trimmed - 1] = '\\'
        in
        let body =
          if continues then String.sub trimmed 0 (String.length trimmed - 1)
          else trimmed
        in
        let n0, prefix =
          match pending with Some (n, s) -> (n, s ^ " ") | None -> (lineno, "")
        in
        let joined = prefix ^ body in
        if continues then join (lineno + 1) acc (Some (n0, joined)) rest
        else join (lineno + 1) ((n0, joined) :: acc) None rest
  in
  join 1 [] None physical

let parse_program_located src =
  let lines = logical_lines src in
  let parse_line acc (lineno, line) =
    let* tasks = acc in
    if String.equal (String.trim line) "" then Ok tasks
    else
      match parse_task line with
      | Ok t -> Ok ((lineno, t) :: tasks)
      | Error d -> Error (Diag.with_span d (Diag.Line lineno))
  in
  let* located = List.fold_left parse_line (Ok []) lines in
  Ok (List.rev located)

let parse_program src =
  match parse_program_located src with
  | Ok located -> Ok (List.map snd located)
  | Error d ->
      let lineno = match Diag.span d with Diag.Line n -> n | _ -> 0 in
      Error (Printf.sprintf "line %d: %s" lineno (Diag.render d))
