type t = {
  swing : int;
  acc_num : int;
  w_addr : int;
  x_addr1 : int;
  x_addr2 : int;
  x_prd : int;
  des : Opcode.destination;
  thres_val : int;
}
[@@deriving eq, show { with_path = false }]

let swing_min = 0
let swing_max = 7

let default =
  {
    swing = swing_max;
    acc_num = 0;
    w_addr = 0;
    x_addr1 = 0;
    x_addr2 = 0;
    x_prd = 0;
    des = Opcode.Des_output_buffer;
    thres_val = 0;
  }

let bit_width = 28

module Diag = Promise_core.Diag

let check name v lo hi =
  if v < lo || v > hi then
    Error
      (Diag.errorf ~code:"P-TSK-001" "%s = %d out of range [%d, %d]" name v lo
         hi)
  else Ok ()

let ( let* ) = Result.bind

let validate t =
  let* () = check "SWING" t.swing 0 7 in
  let* () = check "ACC_NUM" t.acc_num 0 3 in
  let* () = check "W_ADDR" t.w_addr 0 511 in
  let* () = check "X_ADDR1" t.x_addr1 0 7 in
  let* () = check "X_ADDR2" t.x_addr2 0 7 in
  let* () = check "X_PRD" t.x_prd 0 3 in
  let* () = check "THRES_VAL" t.thres_val 0 15 in
  Ok t

let to_bits t =
  match validate t with
  | Error d -> invalid_arg ("Op_param.to_bits: " ^ Diag.render d)
  | Ok t ->
      (t.swing lsl 25) lor (t.acc_num lsl 23) lor (t.w_addr lsl 14)
      lor (t.x_addr1 lsl 11) lor (t.x_addr2 lsl 8) lor (t.x_prd lsl 6)
      lor (Opcode.destination_to_code t.des lsl 4)
      lor t.thres_val

let of_bits bits =
  let field off width = (bits lsr off) land ((1 lsl width) - 1) in
  let des =
    match Opcode.destination_of_code (field 4 2) with
    | Some d -> d
    | None -> assert false (* 2-bit field: all codes are valid *)
  in
  {
    swing = field 25 3;
    acc_num = field 23 2;
    w_addr = field 14 9;
    x_addr1 = field 11 3;
    x_addr2 = field 8 3;
    x_prd = field 6 2;
    des;
    thres_val = field 0 4;
  }

let x_addr_at t ~base ~iteration =
  let period = t.x_prd + 1 in
  (base + iteration) mod period
